//===- gc/GlobalHeap.h - chunked global heap with node affinity ----------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The global heap of Sections 3.1 and 3.4: a collection of fixed-size
/// chunks. Each vproc holds a *current chunk* for major collections and
/// promotions; when it fills, the vproc asks the chunk manager for a new
/// one. That request is either node-local (reusing a free chunk whose
/// pages live on the vproc's node -- "our memory system tracks the node
/// on which a chunk is allocated and preserves node affinity when reusing
/// chunks") or global (registering freshly allocated chunks), matching
/// the paper's two synchronization costs.
///
/// The manager is sharded by node: each node owns a free list and an
/// active list behind its own lock, so the common case -- a vproc reusing
/// a chunk homed on its node -- synchronizes only within that node, never
/// across the machine. Fresh registrations take a separate registration
/// lock and are *batched*: one MemoryBanks mapping carves several chunks,
/// the requester keeps one and the rest seed the home node's free list,
/// so the global synchronization cost is paid once per batch rather than
/// once per chunk.
///
/// A global collection is triggered once the bytes held in live chunks
/// exceed a threshold (the paper uses 32 MB per vproc).
///
//===----------------------------------------------------------------------===//

#ifndef MANTI_GC_GLOBALHEAP_H
#define MANTI_GC_GLOBALHEAP_H

#include "gc/ObjectModel.h"
#include "numa/AllocPolicy.h"
#include "numa/MemoryBanks.h"
#include "support/SpinLock.h"

#include <atomic>
#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

namespace manti {

struct Chunk;

/// Metadata stored in the first cache line of every chunk's memory
/// block. Chunk blocks are aligned to their (power-of-two) size, so any
/// interior pointer reaches its chunk's metadata with one mask -- the
/// global collector uses this to tell from-space objects from to-space
/// ones, and to diagnose pointers that violate the heap invariants.
struct ChunkMeta {
  static constexpr uint64_t ExpectedMagic = 0x4d414e5449474321ull; // MANTIGC!
  uint64_t Magic = ExpectedMagic;
  Chunk *Desc = nullptr;
};

/// Number of words reserved for ChunkMeta at the start of each block.
inline constexpr std::size_t ChunkMetaWords = 8;

/// One global-heap chunk. Chunks are bump-allocated and carry a scan
/// pointer so the global collector can Cheney-scan them.
struct Chunk {
  Word *Base = nullptr;
  Word *Top = nullptr;
  Word *AllocPtr = nullptr;
  Word *ScanPtr = nullptr;
  NodeId HomeNode = 0;   ///< node whose bank backs this chunk's pages
  Chunk *Next = nullptr; ///< intrusive list link (free / active / from-space)
  /// Intrusive link for the global collector's pending-scan ChunkStack.
  /// Separate from Next because a to-space chunk is pushed pending while
  /// it still sits on its shard's active list, and atomic because racing
  /// pops read it without holding any lock.
  std::atomic<Chunk *> PendingNext{nullptr};
  bool InFromSpace = false; ///< set while condemned by a global collection
  /// Oversized chunks hold one object larger than a standard chunk; they
  /// are dedicated allocations freed (not pooled) on release.
  bool IsOversized = false;
  std::size_t BlockBytes = 0; ///< full block allocation, metadata included

  // Concurrent-mark metadata (ConcurrentGC.cpp). A mark cycle's leader
  // stamps every active chunk with the cycle number and the allocation
  // snapshot while the world is briefly stopped; markers then touch only
  // [Base, MarkLimit) of stamped chunks, so mutator bump allocation
  // above MarkLimit never races the tracer. Chunks acquired after the
  // stamp keep a stale MarkEpoch and are retained wholesale.
  std::atomic<uint64_t> MarkEpoch{0}; ///< cycle this chunk was stamped for
  std::atomic<Word *> MarkLimit{nullptr}; ///< AllocPtr at stamp time
  std::atomic<uint64_t> MarkedCount{0};   ///< objects marked this cycle
  /// Side mark bitmap, one bit per word of [Base, MarkLimit). Lazily
  /// sized to the stamped allocation prefix and reused across cycles.
  std::unique_ptr<std::atomic<uint64_t>[]> MarkBits;
  std::size_t MarkBitsWords = 0;

  /// Marks the object whose header occupies \p HdrSlot. \returns true
  /// exactly once per object per cycle (markers race via fetch_or).
  bool testAndSetMark(const Word *HdrSlot) {
    std::size_t Bit = static_cast<std::size_t>(HdrSlot - Base);
    std::atomic<uint64_t> &W = MarkBits[Bit >> 6];
    uint64_t Mask = uint64_t(1) << (Bit & 63);
    return (W.fetch_or(Mask, std::memory_order_relaxed) & Mask) == 0;
  }

  /// Stamps this chunk for mark cycle \p Cycle: snapshots AllocPtr into
  /// MarkLimit and clears the (lazily grown) bitmap. World-stopped only.
  void beginMark(uint64_t Cycle);

  /// Recovers the chunk owning interior pointer \p P. \p ChunkBytes must
  /// be the manager's (power-of-two) chunk size. Aborts if \p P does not
  /// point into a standard chunk; oversized chunks are found through
  /// ChunkManager::chunkOf instead.
  static Chunk *fromInteriorPtr(const Word *P, std::size_t ChunkBytes);

  std::size_t sizeBytes() const {
    return static_cast<std::size_t>(Top - Base) * sizeof(Word);
  }
  std::size_t usedBytes() const {
    return static_cast<std::size_t>(AllocPtr - Base) * sizeof(Word);
  }
  bool contains(const Word *P) const { return P >= Base && P < Top; }

  /// Bump-allocates header + \p LenWords words; null when full.
  Word *tryAlloc(uint16_t Id, uint64_t LenWords) {
    Word *Hdr = AllocPtr;
    if (Hdr + LenWords + 1 > Top)
      return nullptr;
    AllocPtr = Hdr + LenWords + 1;
    Hdr[0] = makeHeader(Id, LenWords);
    return Hdr + 1;
  }

  /// Reserves raw space without writing a header (global GC copies whole
  /// objects, header included). \returns the header slot or null.
  Word *tryReserve(uint64_t FootprintWords) {
    Word *Hdr = AllocPtr;
    if (Hdr + FootprintWords > Top)
      return nullptr;
    AllocPtr = Hdr + FootprintWords;
    return Hdr;
  }

  void resetForReuse() {
    AllocPtr = Base;
    ScanPtr = Base;
    Next = nullptr;
    PendingNext.store(nullptr, std::memory_order_relaxed);
    InFromSpace = false;
    MarkEpoch.store(0, std::memory_order_relaxed);
  }
};

/// Which synchronization class served a chunk acquisition (the paper's
/// node-local vs. global cost split, with cross-node reuse -- a steal
/// from another node's shard -- reported separately).
enum class ChunkSource : uint8_t {
  LocalReuse,  ///< popped from the requesting node's own free shard
  RemoteReuse, ///< stolen from another node's free shard
  Fresh,       ///< served by a fresh batched registration
};

/// A lock-free Treiber stack of chunks, linked through
/// Chunk::PendingNext (never Chunk::Next: a pending chunk is usually
/// still on its shard's active list, whose linkage must survive). Used
/// as the global collector's pending-scan queue so publishing and
/// claiming scan work never serializes the vprocs behind one lock. The
/// head packs a 16-bit ABA tag above the 48-bit pointer, so a pop racing
/// a pop+re-push of the same chunk cannot splice a stale next pointer.
class ChunkStack {
public:
  ChunkStack() = default;
  ChunkStack(const ChunkStack &) = delete;
  ChunkStack &operator=(const ChunkStack &) = delete;

  void push(Chunk *C) {
    uint64_t H = Head.load(std::memory_order_relaxed);
    for (;;) {
      C->PendingNext.store(unpack(H), std::memory_order_relaxed);
      if (Head.compare_exchange_weak(H, pack(C, tag(H) + 1),
                                     std::memory_order_release,
                                     std::memory_order_relaxed))
        return;
    }
  }

  /// Pops the most recently pushed chunk, or null when empty.
  Chunk *tryPop() {
    uint64_t H = Head.load(std::memory_order_acquire);
    for (;;) {
      Chunk *C = unpack(H);
      if (!C)
        return nullptr;
      // The loaded link may be stale if another thread popped C
      // concurrently; the tag bump makes the CAS fail in that case, so
      // the stale value is never installed. Chunk descriptors are only
      // deleted outside the phases that use this stack.
      uint64_t N =
          pack(C->PendingNext.load(std::memory_order_relaxed), tag(H) + 1);
      if (Head.compare_exchange_weak(H, N, std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
        C->PendingNext.store(nullptr, std::memory_order_relaxed);
        return C;
      }
    }
  }

  bool empty() const {
    return unpack(Head.load(std::memory_order_acquire)) == nullptr;
  }

  /// Drops every entry (global-GC leader reset; the stack is expected to
  /// already be empty).
  void clear() { Head.store(0, std::memory_order_relaxed); }

private:
  static constexpr unsigned TagShift = 48;
  static constexpr uint64_t PtrMask = (uint64_t(1) << TagShift) - 1;

  static Chunk *unpack(uint64_t H) {
    return reinterpret_cast<Chunk *>(H & PtrMask);
  }
  static uint64_t tag(uint64_t H) { return H >> TagShift; }
  static uint64_t pack(Chunk *C, uint64_t Tag) {
    return (reinterpret_cast<uint64_t>(C) & PtrMask) | (Tag << TagShift);
  }

  /// 48-bit chunk pointer | 16-bit ABA tag.
  std::atomic<uint64_t> Head{0};
};

/// Thread-safe manager of every chunk in the global heap, sharded by
/// NUMA node.
class ChunkManager {
public:
  /// Chunks carved per fresh MemoryBanks mapping by default.
  static constexpr unsigned DefaultBatchChunks = 8;

  /// \p ChunkBytes must be a power-of-two multiple of the page size.
  /// When \p PreserveAffinity is false the node-affine free shards are
  /// scanned in node order regardless of the requester (the ablation in
  /// bench/ablation_chunk_affinity). \p BatchChunks is the number of
  /// chunks carved out of each fresh mapping (>= 1).
  ChunkManager(MemoryBanks &Banks, AllocPolicy &Policy,
               std::size_t ChunkBytes, bool PreserveAffinity = true,
               unsigned BatchChunks = DefaultBatchChunks);
  ~ChunkManager();

  ChunkManager(const ChunkManager &) = delete;
  ChunkManager &operator=(const ChunkManager &) = delete;

  std::size_t chunkBytes() const { return ChunkBytes; }
  unsigned batchChunks() const { return BatchChunks; }

  /// Object-area capacity of a standard chunk.
  std::size_t standardCapacityBytes() const {
    return ChunkBytes - ChunkMetaWords * sizeof(Word);
  }

  /// Allocates a dedicated chunk able to hold one object of
  /// \p MinObjectBytes (used for objects larger than a standard chunk).
  /// Recorded as active; freed outright when released.
  Chunk *acquireOversized(NodeId RequestingNode, std::size_t MinObjectBytes);

  /// \returns the chunk containing global-heap address \p P: standard
  /// chunks through the alignment mask, oversized ones through the
  /// index. Aborts when \p P is no global address (given the heap
  /// invariants, that means a local pointer leaked across vprocs).
  Chunk *chunkOf(const Word *P) const;

  /// Hands out a chunk for allocation by a vproc on \p RequestingNode.
  /// Prefers a free chunk homed on that node (node-local
  /// synchronization: only that node's shard lock), then steals from
  /// another node's shard, then registers a fresh batch of chunks
  /// (global synchronization). The chunk is recorded as *active* on its
  /// home shard. \p Source, when non-null, receives the synchronization
  /// class that served the request.
  Chunk *acquireChunk(NodeId RequestingNode, ChunkSource *Source = nullptr);

  /// Moves every active chunk into the per-node from-space lists, marks
  /// them condemned, and clears the active sets (global GC step: "these
  /// global heap chunks are gathered on a per-node basis"). Caller must
  /// have stopped the world.
  void gatherFromSpace(std::vector<Chunk *> &PerNodeFromLists);

  /// Returns a from-space chunk to its home node's free shard.
  void releaseChunk(Chunk *C);

  /// Stamps every active chunk for concurrent-mark cycle \p Cycle
  /// (Chunk::beginMark). Called by the cycle's leader while the world is
  /// stopped at the initial rendezvous.
  void beginMarkCycle(uint64_t Cycle);

  /// Non-moving sweep after a concurrent mark: unlinks and releases every
  /// active chunk stamped for \p Cycle that finished the cycle with no
  /// marked objects and no post-snapshot allocation. Chunks in \p Pinned
  /// (the vprocs' current allocation chunks) are kept even when empty.
  /// World-stopped (terminal rendezvous leader) only. \returns freed
  /// bytes.
  uint64_t sweepUnmarked(uint64_t Cycle, const std::vector<const Chunk *> &Pinned);

  /// Bytes currently held by active chunks (allocation capacity handed
  /// out, which is what the paper's trigger counts).
  uint64_t activeBytes() const {
    return ActiveBytes.load(std::memory_order_relaxed);
  }

  /// Number of chunks ever created (batched registrations create
  /// batchChunks() of them per fresh mapping).
  unsigned numChunksCreated() const {
    return NumCreated.load(std::memory_order_relaxed);
  }

  /// Counters distinguishing the synchronization classes.
  uint64_t nodeLocalReuses() const {
    return NodeLocalReuses.load(std::memory_order_relaxed);
  }
  uint64_t crossNodeSteals() const {
    return CrossNodeSteals.load(std::memory_order_relaxed);
  }
  /// Fresh mappings registered with the runtime (each carves a batch of
  /// standard chunks, or one oversized chunk).
  uint64_t freshRegistrations() const {
    return FreshRegistrations.load(std::memory_order_relaxed);
  }
  /// Historical alias for freshRegistrations().
  uint64_t globalAllocations() const { return freshRegistrations(); }

  /// \returns true if \p P points into any active chunk. O(#chunks);
  /// meant for tests and invariant checks, not hot paths.
  bool activeChunksContain(const Word *P) const;

  /// Applies \p Fn to every active chunk (stop-the-world only).
  template <typename FnT> void forEachActiveChunk(FnT Fn) const {
    for (const Shard &S : Shards)
      for (Chunk *C = S.Active; C; C = C->Next)
        Fn(C);
  }

private:
  /// Per-node shard: free and active chunks homed on this node, behind a
  /// node-private lock. Padded to a cache line so shard locks on
  /// different nodes never false-share.
  struct alignas(64) Shard {
    mutable SpinLock Lock;
    Chunk *Free = nullptr;   ///< reusable chunks homed on this node
    Chunk *Active = nullptr; ///< handed-out chunks homed on this node
  };

  /// Maps a fresh batch, activates one chunk for the requester, and
  /// seeds the home shard's free list with the rest.
  Chunk *registerFreshBatch(NodeId RequestingNode);
  Chunk *carveChunk(void *BlockBase);
  void activateLocked(Shard &S, Chunk *C, std::size_t Bytes);

  MemoryBanks &Banks;
  AllocPolicy &Policy;
  const std::size_t ChunkBytes;
  const bool PreserveAffinity;
  const unsigned BatchChunks;

  std::vector<Shard> Shards; ///< one per node

  /// Guards the ownership structures below (fresh registrations and the
  /// oversized index) -- the paper's "global synchronization" class.
  mutable SpinLock RegisterLock;
  std::vector<Chunk *> AllChunks; ///< standard-chunk descriptor ownership
  /// One entry per fresh batched mapping: (block base, block bytes).
  std::vector<std::pair<void *, std::size_t>> BatchBlocks;
  /// Oversized chunks, sorted by block base address (also ownership).
  std::vector<std::pair<uintptr_t, Chunk *>> Oversized;
  /// Lock-free emptiness check so chunkOf skips the index lock entirely
  /// in the common no-oversized-chunks case.
  std::atomic<unsigned> NumOversized{0};

  std::atomic<uint64_t> ActiveBytes{0};
  std::atomic<unsigned> NumCreated{0};
  std::atomic<uint64_t> NodeLocalReuses{0};
  std::atomic<uint64_t> CrossNodeSteals{0};
  std::atomic<uint64_t> FreshRegistrations{0};
};

} // namespace manti

#endif // MANTI_GC_GLOBALHEAP_H
