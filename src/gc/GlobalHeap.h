//===- gc/GlobalHeap.h - chunked global heap with node affinity ----------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The global heap of Sections 3.1 and 3.4: a collection of fixed-size
/// chunks. Each vproc holds a *current chunk* for major collections and
/// promotions; when it fills, the vproc asks the chunk manager for a new
/// one. That request is either node-local (reusing a free chunk whose
/// pages live on the vproc's node -- "our memory system tracks the node
/// on which a chunk is allocated and preserves node affinity when reusing
/// chunks") or global (registering a freshly allocated chunk), matching
/// the paper's two synchronization costs.
///
/// A global collection is triggered once the bytes held in live chunks
/// exceed a threshold (the paper uses 32 MB per vproc).
///
//===----------------------------------------------------------------------===//

#ifndef MANTI_GC_GLOBALHEAP_H
#define MANTI_GC_GLOBALHEAP_H

#include "gc/ObjectModel.h"
#include "numa/AllocPolicy.h"
#include "numa/MemoryBanks.h"
#include "support/SpinLock.h"

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

namespace manti {

struct Chunk;

/// Metadata stored in the first cache line of every chunk's memory
/// block. Chunk blocks are aligned to their (power-of-two) size, so any
/// interior pointer reaches its chunk's metadata with one mask -- the
/// global collector uses this to tell from-space objects from to-space
/// ones, and to diagnose pointers that violate the heap invariants.
struct ChunkMeta {
  static constexpr uint64_t ExpectedMagic = 0x4d414e5449474321ull; // MANTIGC!
  uint64_t Magic = ExpectedMagic;
  Chunk *Desc = nullptr;
};

/// Number of words reserved for ChunkMeta at the start of each block.
inline constexpr std::size_t ChunkMetaWords = 8;

/// One global-heap chunk. Chunks are bump-allocated and carry a scan
/// pointer so the global collector can Cheney-scan them.
struct Chunk {
  Word *Base = nullptr;
  Word *Top = nullptr;
  Word *AllocPtr = nullptr;
  Word *ScanPtr = nullptr;
  NodeId HomeNode = 0;   ///< node whose bank backs this chunk's pages
  Chunk *Next = nullptr; ///< intrusive list link (free / active / pending)
  bool InFromSpace = false; ///< set while condemned by a global collection
  /// Oversized chunks hold one object larger than a standard chunk; they
  /// are dedicated allocations freed (not pooled) on release.
  bool IsOversized = false;
  std::size_t BlockBytes = 0; ///< full block allocation, metadata included

  /// Recovers the chunk owning interior pointer \p P. \p ChunkBytes must
  /// be the manager's (power-of-two) chunk size. Aborts if \p P does not
  /// point into a standard chunk; oversized chunks are found through
  /// ChunkManager::chunkOf instead.
  static Chunk *fromInteriorPtr(const Word *P, std::size_t ChunkBytes);

  std::size_t sizeBytes() const {
    return static_cast<std::size_t>(Top - Base) * sizeof(Word);
  }
  std::size_t usedBytes() const {
    return static_cast<std::size_t>(AllocPtr - Base) * sizeof(Word);
  }
  bool contains(const Word *P) const { return P >= Base && P < Top; }

  /// Bump-allocates header + \p LenWords words; null when full.
  Word *tryAlloc(uint16_t Id, uint64_t LenWords) {
    Word *Hdr = AllocPtr;
    if (Hdr + LenWords + 1 > Top)
      return nullptr;
    AllocPtr = Hdr + LenWords + 1;
    Hdr[0] = makeHeader(Id, LenWords);
    return Hdr + 1;
  }

  /// Reserves raw space without writing a header (global GC copies whole
  /// objects, header included). \returns the header slot or null.
  Word *tryReserve(uint64_t FootprintWords) {
    Word *Hdr = AllocPtr;
    if (Hdr + FootprintWords > Top)
      return nullptr;
    AllocPtr = Hdr + FootprintWords;
    return Hdr;
  }

  void resetForReuse() {
    AllocPtr = Base;
    ScanPtr = Base;
    Next = nullptr;
    InFromSpace = false;
  }
};

/// Thread-safe manager of every chunk in the global heap.
class ChunkManager {
public:
  /// \p ChunkBytes must be a multiple of the page size. When
  /// \p PreserveAffinity is false the node-affine free lists collapse
  /// into one pool (the ablation in bench/ablation_chunk_affinity).
  ChunkManager(MemoryBanks &Banks, AllocPolicy &Policy,
               std::size_t ChunkBytes, bool PreserveAffinity = true);
  ~ChunkManager();

  ChunkManager(const ChunkManager &) = delete;
  ChunkManager &operator=(const ChunkManager &) = delete;

  std::size_t chunkBytes() const { return ChunkBytes; }

  /// Object-area capacity of a standard chunk.
  std::size_t standardCapacityBytes() const {
    return ChunkBytes - ChunkMetaWords * sizeof(Word);
  }

  /// Allocates a dedicated chunk able to hold one object of
  /// \p MinObjectBytes (used for objects larger than a standard chunk).
  /// Recorded as active; freed outright when released.
  Chunk *acquireOversized(NodeId RequestingNode, std::size_t MinObjectBytes);

  /// \returns the chunk containing global-heap address \p P: standard
  /// chunks through the alignment mask, oversized ones through the
  /// index. Aborts when \p P is no global address (given the heap
  /// invariants, that means a local pointer leaked across vprocs).
  Chunk *chunkOf(const Word *P) const;

  /// Hands out a chunk for allocation by a vproc on \p RequestingNode.
  /// Prefers a free chunk homed on that node (node-local synchronization);
  /// otherwise reuses any free chunk or maps a fresh one (global
  /// synchronization). The chunk is recorded as *active*.
  Chunk *acquireChunk(NodeId RequestingNode);

  /// Moves every active chunk into the per-node from-space lists, marks
  /// them condemned, and clears the active set (global GC step: "these
  /// global heap chunks are gathered on a per-node basis"). Caller must
  /// have stopped the world.
  void gatherFromSpace(std::vector<Chunk *> &PerNodeFromLists);

  /// Returns a from-space chunk to the free pool.
  void releaseChunk(Chunk *C);

  /// Bytes currently held by active chunks (allocation capacity handed
  /// out, which is what the paper's trigger counts).
  uint64_t activeBytes() const {
    return ActiveBytes.load(std::memory_order_relaxed);
  }

  /// Number of chunks ever created.
  unsigned numChunksCreated() const {
    return NumCreated.load(std::memory_order_relaxed);
  }

  /// Counters distinguishing the two synchronization classes.
  uint64_t nodeLocalReuses() const {
    return NodeLocalReuses.load(std::memory_order_relaxed);
  }
  uint64_t globalAllocations() const {
    return GlobalAllocs.load(std::memory_order_relaxed);
  }

  /// \returns true if \p P points into any active chunk. O(#chunks);
  /// meant for tests and invariant checks, not hot paths.
  bool activeChunksContain(const Word *P) const;

  /// Applies \p Fn to every active chunk (stop-the-world only).
  template <typename FnT> void forEachActiveChunk(FnT Fn) const {
    for (Chunk *C = Active; C; C = C->Next)
      Fn(C);
  }

private:
  Chunk *newChunk(NodeId RequestingNode);

  MemoryBanks &Banks;
  AllocPolicy &Policy;
  const std::size_t ChunkBytes;
  const bool PreserveAffinity;

  mutable SpinLock Lock;
  std::vector<Chunk *> FreeByNode; ///< heads of per-node free lists
  Chunk *Active = nullptr;         ///< all chunks handed out
  std::vector<Chunk *> AllChunks;  ///< standard-chunk ownership
  /// Oversized chunks, sorted by block base address (also ownership).
  std::vector<std::pair<uintptr_t, Chunk *>> Oversized;
  /// Lock-free emptiness check so chunkOf skips the index lock entirely
  /// in the common no-oversized-chunks case.
  std::atomic<unsigned> NumOversized{0};

  std::atomic<uint64_t> ActiveBytes{0};
  std::atomic<unsigned> NumCreated{0};
  std::atomic<uint64_t> NodeLocalReuses{0};
  std::atomic<uint64_t> GlobalAllocs{0};
};

} // namespace manti

#endif // MANTI_GC_GLOBALHEAP_H
