//===- support/SpinLock.h - test-and-test-and-set spin lock --------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A TTAS spin lock that yields to the OS scheduler after a short spin.
/// The paper's chunk-manager synchronization is "node-local or global" and
/// rarely contended, so a spin lock is the right weight; yielding keeps it
/// safe on machines with fewer hardware threads than vprocs (including the
/// single-core CI container this reproduction runs on).
///
//===----------------------------------------------------------------------===//

#ifndef MANTI_SUPPORT_SPINLOCK_H
#define MANTI_SUPPORT_SPINLOCK_H

#include <atomic>
#include <thread>

namespace manti {

/// Satisfies BasicLockable so it can be used with std::lock_guard.
class SpinLock {
public:
  SpinLock() = default;
  SpinLock(const SpinLock &) = delete;
  SpinLock &operator=(const SpinLock &) = delete;

  void lock() {
    for (unsigned Spins = 0;; ++Spins) {
      if (!Flag.exchange(true, std::memory_order_acquire))
        return;
      while (Flag.load(std::memory_order_relaxed)) {
        if (Spins++ > SpinLimit)
          std::this_thread::yield();
      }
    }
  }

  bool try_lock() { return !Flag.exchange(true, std::memory_order_acquire); }

  void unlock() { Flag.store(false, std::memory_order_release); }

private:
  static constexpr unsigned SpinLimit = 64;
  std::atomic<bool> Flag{false};
};

} // namespace manti

#endif // MANTI_SUPPORT_SPINLOCK_H
