//===- support/XorShift.h - deterministic pseudo-random numbers ----------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small xorshift64* generator. Every randomized component in the
/// project (work-stealing victim selection, workload generation, the
/// Plummer distribution for Barnes-Hut) draws from this generator so that
/// runs are reproducible across machines; std::mt19937 is avoided because
/// its distributions are not specified bit-exactly across libstdc++
/// versions.
///
//===----------------------------------------------------------------------===//

#ifndef MANTI_SUPPORT_XORSHIFT_H
#define MANTI_SUPPORT_XORSHIFT_H

#include <cassert>
#include <cstdint>

namespace manti {

/// xorshift64* PRNG (Vigna 2014). Deterministic and seedable; passes
/// BigCrush on the high bits, which is more than enough for scheduling
/// and synthetic-workload decisions.
class XorShift64 {
public:
  explicit XorShift64(uint64_t Seed = 0x9E3779B97F4A7C15ull)
      : State(Seed ? Seed : 0x9E3779B97F4A7C15ull) {}

  /// \returns the next 64 random bits.
  uint64_t next() {
    State ^= State >> 12;
    State ^= State << 25;
    State ^= State >> 27;
    return State * 0x2545F4914F6CDD1Dull;
  }

  /// \returns a uniform integer in [0, Bound); Bound must be nonzero.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound != 0 && "empty range");
    // Multiply-shift range reduction; bias is negligible for our bounds.
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(next()) * Bound) >> 64);
  }

  /// \returns a uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// \returns a uniform double in [Lo, Hi).
  double nextDouble(double Lo, double Hi) {
    return Lo + (Hi - Lo) * nextDouble();
  }

private:
  uint64_t State;
};

} // namespace manti

#endif // MANTI_SUPPORT_XORSHIFT_H
