//===- support/Assert.cpp -------------------------------------------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//

#include "support/Assert.h"

#include <cstdio>
#include <cstdlib>

void manti::reportFatalError(const char *Msg, const char *File,
                             unsigned Line) {
  std::fprintf(stderr, "fatal error: %s (at %s:%u)\n", Msg, File, Line);
  std::fflush(stderr);
  std::abort();
}
