//===- support/Compiler.h - portability and hint macros ------------------===//
//
// Part of the manticore-gc project: a reproduction of "Garbage Collection
// for Multicore NUMA Machines" (Auhagen, Bergstrom, Fluet, Reppy, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small set of compiler hint and portability macros used across the
/// project. Follows the spirit of llvm/Support/Compiler.h.
///
//===----------------------------------------------------------------------===//

#ifndef MANTI_SUPPORT_COMPILER_H
#define MANTI_SUPPORT_COMPILER_H

#include <cstddef>

#if defined(__GNUC__) || defined(__clang__)
#define MANTI_LIKELY(EXPR) __builtin_expect(static_cast<bool>(EXPR), true)
#define MANTI_UNLIKELY(EXPR) __builtin_expect(static_cast<bool>(EXPR), false)
#define MANTI_NOINLINE __attribute__((noinline))
#define MANTI_ALWAYS_INLINE inline __attribute__((always_inline))
/// Read-prefetch with high temporal locality: the scan loops issue these
/// a few objects ahead of the cursor (read-only; the L1-bound hint suits
/// headers and pointer fields that are touched within a few iterations).
#define MANTI_PREFETCH(ADDR) __builtin_prefetch((ADDR), 0, 3)
#else
#define MANTI_LIKELY(EXPR) (EXPR)
#define MANTI_UNLIKELY(EXPR) (EXPR)
#define MANTI_NOINLINE
#define MANTI_ALWAYS_INLINE inline
#define MANTI_PREFETCH(ADDR) ((void)(ADDR))
#endif

namespace manti {

/// Size, in bytes, assumed for one cache line when padding shared state.
inline constexpr std::size_t CacheLineSize = 64;

} // namespace manti

#endif // MANTI_SUPPORT_COMPILER_H
