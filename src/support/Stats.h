//===- support/Stats.h - counters, timers, and summaries -----------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight statistics: monotonic counters and accumulating timers the
/// GC phases use to report the numbers behind the paper's evaluation
/// (collection counts, bytes copied, pause times). Counters are plain
/// (non-atomic) because each vproc owns its own GCStats; cross-vproc
/// aggregation happens at report time while the world is stopped.
///
//===----------------------------------------------------------------------===//

#ifndef MANTI_SUPPORT_STATS_H
#define MANTI_SUPPORT_STATS_H

#include <chrono>
#include <cstdint>

namespace manti {

/// Accumulates a duration total, a count, and the maximum single sample.
/// Used for GC pause tracking (count, total, max pause).
class DurationStat {
public:
  using Clock = std::chrono::steady_clock;

  void addSample(std::chrono::nanoseconds Sample) {
    uint64_t Nanos = Sample.count() < 0
                         ? 0
                         : static_cast<uint64_t>(Sample.count());
    ++NumSamples;
    TotalNanos += Nanos;
    if (Nanos > MaxNanos)
      MaxNanos = Nanos;
  }

  uint64_t count() const { return NumSamples; }
  uint64_t totalNanos() const { return TotalNanos; }
  uint64_t maxNanos() const { return MaxNanos; }
  double meanNanos() const {
    return NumSamples == 0 ? 0.0
                           : static_cast<double>(TotalNanos) /
                                 static_cast<double>(NumSamples);
  }

  /// Merges \p Other into this stat (used when aggregating vproc stats).
  void merge(const DurationStat &Other) {
    NumSamples += Other.NumSamples;
    TotalNanos += Other.TotalNanos;
    if (Other.MaxNanos > MaxNanos)
      MaxNanos = Other.MaxNanos;
  }

private:
  uint64_t NumSamples = 0;
  uint64_t TotalNanos = 0;
  uint64_t MaxNanos = 0;
};

/// RAII timer that feeds a DurationStat on destruction.
class ScopedTimer {
public:
  explicit ScopedTimer(DurationStat &Stat)
      : Stat(Stat), Start(DurationStat::Clock::now()) {}
  ~ScopedTimer() {
    Stat.addSample(std::chrono::duration_cast<std::chrono::nanoseconds>(
        DurationStat::Clock::now() - Start));
  }
  ScopedTimer(const ScopedTimer &) = delete;
  ScopedTimer &operator=(const ScopedTimer &) = delete;

private:
  DurationStat &Stat;
  DurationStat::Clock::time_point Start;
};

/// Formats \p Bytes as a human-readable quantity into \p Buf (size >= 32).
void formatBytes(uint64_t Bytes, char *Buf, unsigned BufSize);

} // namespace manti

#endif // MANTI_SUPPORT_STATS_H
