//===- support/MathExtras.h - bit and alignment helpers ------------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Alignment and power-of-two arithmetic used by the heap layout code.
///
//===----------------------------------------------------------------------===//

#ifndef MANTI_SUPPORT_MATHEXTRAS_H
#define MANTI_SUPPORT_MATHEXTRAS_H

#include <cassert>
#include <cstdint>

namespace manti {

/// \returns true if \p Value is a power of two (zero is not).
constexpr bool isPowerOf2(uint64_t Value) {
  return Value != 0 && (Value & (Value - 1)) == 0;
}

/// \returns \p Value rounded up to the next multiple of \p Align.
/// \p Align must be a power of two.
constexpr uint64_t alignTo(uint64_t Value, uint64_t Align) {
  assert(isPowerOf2(Align) && "alignment must be a power of two");
  return (Value + Align - 1) & ~(Align - 1);
}

/// \returns \p Value rounded down to the previous multiple of \p Align.
constexpr uint64_t alignDown(uint64_t Value, uint64_t Align) {
  assert(isPowerOf2(Align) && "alignment must be a power of two");
  return Value & ~(Align - 1);
}

/// \returns true if \p Value is a multiple of power-of-two \p Align.
constexpr bool isAligned(uint64_t Value, uint64_t Align) {
  return (Value & (Align - 1)) == 0;
}

/// \returns ceil(Numerator / Denominator) for Denominator > 0.
constexpr uint64_t divideCeil(uint64_t Numerator, uint64_t Denominator) {
  assert(Denominator != 0 && "division by zero");
  return (Numerator + Denominator - 1) / Denominator;
}

/// \returns floor(log2(Value)); Value must be nonzero.
constexpr unsigned log2Floor(uint64_t Value) {
  assert(Value != 0 && "log2 of zero");
  return 63 - static_cast<unsigned>(__builtin_clzll(Value));
}

/// \returns the smallest power of two >= \p Value (Value >= 1).
constexpr uint64_t nextPowerOf2(uint64_t Value) {
  assert(Value != 0 && "nextPowerOf2 of zero");
  return isPowerOf2(Value) ? Value : uint64_t(1) << (log2Floor(Value) + 1);
}

} // namespace manti

#endif // MANTI_SUPPORT_MATHEXTRAS_H
