//===- support/Barrier.h - reusable thread barrier ------------------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A reusable (phase-counting) barrier built on a mutex and condition
/// variable. The global collector uses it to line vprocs up between the
/// local-collection, root-scanning, and chunk-scanning phases. A blocking
/// barrier (rather than a spinning sense-reversal barrier) is used because
/// vprocs can outnumber hardware threads.
///
//===----------------------------------------------------------------------===//

#ifndef MANTI_SUPPORT_BARRIER_H
#define MANTI_SUPPORT_BARRIER_H

#include <condition_variable>
#include <cstddef>
#include <mutex>

namespace manti {

class Barrier {
public:
  /// Creates a barrier for \p Count participating threads.
  explicit Barrier(std::size_t Count);

  /// Blocks until all participants have arrived. \returns true on exactly
  /// one participant per phase (the "serial thread"), false on the others.
  bool arriveAndWait();

  /// Number of participants this barrier synchronizes.
  std::size_t participants() const { return Count; }

private:
  const std::size_t Count;
  std::size_t Waiting = 0;
  std::size_t Phase = 0;
  std::mutex Mutex;
  std::condition_variable Cond;
};

} // namespace manti

#endif // MANTI_SUPPORT_BARRIER_H
