//===- support/Stats.cpp --------------------------------------------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//

#include "support/Stats.h"

#include <cstdio>

void manti::formatBytes(uint64_t Bytes, char *Buf, unsigned BufSize) {
  if (Bytes >= (uint64_t(1) << 30))
    std::snprintf(Buf, BufSize, "%.2f GiB",
                  static_cast<double>(Bytes) / (1 << 30));
  else if (Bytes >= (uint64_t(1) << 20))
    std::snprintf(Buf, BufSize, "%.2f MiB",
                  static_cast<double>(Bytes) / (1 << 20));
  else if (Bytes >= (uint64_t(1) << 10))
    std::snprintf(Buf, BufSize, "%.2f KiB",
                  static_cast<double>(Bytes) / (1 << 10));
  else
    std::snprintf(Buf, BufSize, "%llu B",
                  static_cast<unsigned long long>(Bytes));
}
