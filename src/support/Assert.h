//===- support/Assert.h - fatal errors and unreachable markers -----------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fatal-error reporting and the MANTI_UNREACHABLE marker. Library code
/// never throws; invariant violations abort with a diagnostic, exactly as
/// the LLVM coding standards recommend for programmatic errors.
///
//===----------------------------------------------------------------------===//

#ifndef MANTI_SUPPORT_ASSERT_H
#define MANTI_SUPPORT_ASSERT_H

#include <cassert>

namespace manti {

/// Prints "fatal error: <Msg> (at File:Line)" to stderr and aborts.
[[noreturn]] void reportFatalError(const char *Msg, const char *File,
                                   unsigned Line);

} // namespace manti

/// Marks a point in the program that is unconditionally a bug to reach.
#define MANTI_UNREACHABLE(MSG)                                                 \
  ::manti::reportFatalError(MSG, __FILE__, __LINE__)

/// Checks an invariant even in release builds; use for cheap checks on
/// cold paths (the GC uses it to validate heap invariants at phase edges).
#define MANTI_CHECK(COND, MSG)                                                 \
  do {                                                                         \
    if (!(COND))                                                               \
      ::manti::reportFatalError(MSG, __FILE__, __LINE__);                      \
  } while (false)

#endif // MANTI_SUPPORT_ASSERT_H
