//===- support/Barrier.cpp ------------------------------------------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//

#include "support/Barrier.h"

#include <cassert>

using namespace manti;

Barrier::Barrier(std::size_t Count) : Count(Count) {
  assert(Count > 0 && "barrier needs at least one participant");
}

bool Barrier::arriveAndWait() {
  std::unique_lock<std::mutex> Lock(Mutex);
  std::size_t MyPhase = Phase;
  if (++Waiting == Count) {
    Waiting = 0;
    ++Phase;
    Cond.notify_all();
    return true;
  }
  Cond.wait(Lock, [&] { return Phase != MyPhase; });
  return false;
}
