//===- support/Logging.h - debug logging ----------------------------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// printf-style debug logging gated by the MANTI_DEBUG environment
/// variable. Modeled on LLVM_DEBUG/-debug-only: set MANTI_DEBUG=gc,sched
/// to enable the "gc" and "sched" channels, or MANTI_DEBUG=all for
/// everything. Disabled channels cost one branch on a cached flag.
///
//===----------------------------------------------------------------------===//

#ifndef MANTI_SUPPORT_LOGGING_H
#define MANTI_SUPPORT_LOGGING_H

namespace manti {

/// \returns true if debug channel \p Channel was requested via MANTI_DEBUG.
bool isDebugChannelEnabled(const char *Channel);

/// Writes one formatted line, prefixed with "[<Channel>] ", to stderr.
void debugLog(const char *Channel, const char *Fmt, ...)
    __attribute__((format(printf, 2, 3)));

} // namespace manti

/// Emits \p ... (printf style) on \p CHANNEL when enabled.
#define MANTI_DEBUG(CHANNEL, ...)                                              \
  do {                                                                         \
    if (::manti::isDebugChannelEnabled(CHANNEL))                               \
      ::manti::debugLog(CHANNEL, __VA_ARGS__);                                 \
  } while (false)

#endif // MANTI_SUPPORT_LOGGING_H
