//===- support/Logging.cpp ------------------------------------------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//

#include "support/Logging.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

using namespace manti;

namespace {

/// Parsed value of the MANTI_DEBUG environment variable.
struct DebugConfig {
  bool All = false;
  std::vector<std::string> Channels;

  DebugConfig() {
    const char *Env = std::getenv("MANTI_DEBUG");
    if (!Env)
      return;
    std::string Spec(Env);
    std::size_t Pos = 0;
    while (Pos < Spec.size()) {
      std::size_t Comma = Spec.find(',', Pos);
      if (Comma == std::string::npos)
        Comma = Spec.size();
      std::string Name = Spec.substr(Pos, Comma - Pos);
      if (Name == "all")
        All = true;
      else if (!Name.empty())
        Channels.push_back(Name);
      Pos = Comma + 1;
    }
  }

  bool enabled(const char *Channel) const {
    if (All)
      return true;
    for (const std::string &Name : Channels)
      if (Name == Channel)
        return true;
    return false;
  }
};

} // namespace

static const DebugConfig &getConfig() {
  static DebugConfig Config;
  return Config;
}

bool manti::isDebugChannelEnabled(const char *Channel) {
  return getConfig().enabled(Channel);
}

void manti::debugLog(const char *Channel, const char *Fmt, ...) {
  // Serialize whole lines so interleaved vproc output stays readable.
  static std::mutex LogMutex;
  std::lock_guard<std::mutex> Lock(LogMutex);
  std::fprintf(stderr, "[%s] ", Channel);
  va_list Args;
  va_start(Args, Fmt);
  std::vfprintf(stderr, Fmt, Args);
  va_end(Args);
  std::fputc('\n', stderr);
}
