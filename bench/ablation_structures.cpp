//===- bench/ablation_structures.cpp - GC vs epoch reclamation ablation ---===//
//
// Part of the manticore-gc project.
//
// The data-structure ablation: the same two lock-free ordered sets (a
// Harris-style linked list and a skiplist) written twice -- once with
// nodes as runtime heap objects reclaimed by the collector
// (structures/GcStructures.h, run with mostly-concurrent marking on),
// once with malloc'd nodes and a manual epoch-based-reclamation
// baseline (structures/EpochStructures.h). Identical op mixes are swept
// over update ratio x thread count x structure x reclaimer on both
// recorded topologies.
//
// What the columns show: the GC rows pay promotion + SATB barriers on
// the mutator path and the collector's rendezvous pauses land in the op
// latency tail (p99 tracks max-pause once cycles fire); the epoch rows
// pay a pin/unpin fence pair per op and retire-list bookkeeping, but
// never pause. The retired/reclaimed pair makes the reclamation story
// explicit: epoch rows reclaim exactly what they retire (after drain);
// GC rows report the heap footprint a forced end-of-run *copying*
// collection returns -- chunk-granular, so it is floating garbage plus
// allocation slack, the memory the concurrent whole-chunk sweep could
// not recover while live nodes kept every chunk pinned.
//
// Usage: bench_ablation_structures [--quick] [--json <path>]
//                                  [--topology <name>]
//
//===----------------------------------------------------------------------===//

#include "GCBenchUtils.h"
#include "gc/GCReport.h"
#include "numa/Topology.h"
#include "service/LatencyRecorder.h"
#include "structures/EpochStructures.h"
#include "structures/GcStructures.h"

#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

using namespace manti;
using namespace manti::benchutil;

namespace {

int OpsPerThread = 40000;
unsigned KeySpace = 2048;

uint64_t splitmix64(uint64_t &State) {
  State += 0x9E3779B97F4A7C15ull;
  uint64_t Z = State;
  Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ull;
  Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBull;
  return Z ^ (Z >> 31);
}

GCConfig structuresConfig() {
  GCConfig Cfg;
  // Small nursery and a low global trigger so the GC rows actually
  // collect under --quick volumes; the epoch rows allocate nothing on
  // the runtime heaps, so the same config is a no-op for them.
  Cfg.LocalHeapBytes = 256 * 1024;
  Cfg.GlobalGCBytesPerVProc = 64 * 1024;
  Cfg.ConcurrentGlobal = true;
  return Cfg;
}

struct RowResult {
  double Seconds = 0;
  double P99Us = 0;
  double MaxPauseUs = 0;
  double RetiredMb = 0;
  double ReclaimedMb = 0;
  double Cycles = 0;
  double SizeclassHits = 0;
  double SizeclassMisses = 0;
  double SizeclassFlushes = 0;
};

/// Runs the op mix on every vproc thread: UpdatePct/2 inserts,
/// UpdatePct/2 erases, the rest membership tests, keys uniform over
/// KeySpace. Every 8th op is latency-sampled (cheap enough not to
/// perturb the mix, dense enough for a stable p99).
template <typename SetT>
double hammer(GCWorld &W, SetT &S, unsigned UpdatePct,
              std::vector<LatencyRecorder> &Recorders) {
  const auto T0 = std::chrono::steady_clock::now();
  runOnWorldThreads(W, [&S, UpdatePct, &Recorders](VProcHeap &H) {
    uint64_t Seed = 0xABCDEF12345ull + 0x1000ull * H.id();
    LatencyRecorder &Rec = Recorders[H.id()];
    for (int Op = 0; Op < OpsPerThread; ++Op) {
      const uint64_t R = splitmix64(Seed);
      const auto Key = static_cast<int64_t>(R % KeySpace);
      const unsigned Pick = static_cast<unsigned>((R >> 32) % 100);
      const bool Sample = (Op & 7) == 0;
      const auto S0 = Sample ? std::chrono::steady_clock::now()
                             : std::chrono::steady_clock::time_point{};
      if (Pick < UpdatePct / 2)
        S.insert(H, Key);
      else if (Pick < UpdatePct)
        S.erase(H, Key);
      else
        S.contains(H, Key);
      if (Sample) {
        const auto S1 = std::chrono::steady_clock::now();
        Rec.record(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(S1 - S0)
                .count()));
      }
      H.safePoint();
    }
  });
  const auto T1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(T1 - T0).count();
}

/// Drives one forced, untimed end-of-run *copying* (STW) collection and
/// \returns the active-bytes drop: the retired garbage still occupying
/// the global heap at quiescence. The concurrent cycles that ran during
/// the hammer sweep whole chunks only, so dead nodes interleaved with
/// live ones linger as floating garbage until this compaction -- exactly
/// the gap the retired/reclaimed pair is meant to expose.
uint64_t forcedCycleReclaimedBytes(GCWorld &W) {
  auto Settle = [&W] {
    runOnWorldThreads(W, [&W](VProcHeap &H) {
      while (W.collectionInProgress()) {
        H.safePoint();
        std::this_thread::yield();
      }
    });
  };
  // A mid-run cycle may still be in flight when the hammer drains; finish
  // it first so the forced collection below is guaranteed to start.
  Settle();
  const uint64_t Before = W.chunks().activeBytes();
  W.requestGlobalGC();
  Settle();
  const uint64_t After = W.chunks().activeBytes();
  return Before > After ? Before - After : 0;
}

template <typename SetT, typename ReclaimerT>
RowResult runGcRow(const Topology &Topo, unsigned Threads, unsigned UpdatePct) {
  GCWorld W(structuresConfig(), Topo, Threads);
  ReclaimerT R(Threads);
  RowResult Out;
  std::vector<LatencyRecorder> Recorders(Threads);
  {
    SetT S(W.heap(0), R);
    Out.Seconds = hammer(W, S, UpdatePct, Recorders);
    // Pause and cycle columns describe the timed region only; capture
    // them before the forced end-of-run compaction adds its own pause.
    Report Rep = buildGCReport(W);
    Out.MaxPauseUs = Rep.value("pause.max_us");
    Out.SizeclassHits = Rep.value("alloc.sizeclass.hits");
    Out.SizeclassMisses = Rep.value("alloc.sizeclass.misses");
    Out.SizeclassFlushes = Rep.value("alloc.sizeclass.flushes");
    Out.Cycles =
        static_cast<double>(W.globalGCCount() + W.concurrentGCCount());
    Out.ReclaimedMb =
        static_cast<double>(forcedCycleReclaimedBytes(W)) / (1024.0 * 1024.0);
  }
  LatencyRecorder Merged;
  for (const LatencyRecorder &Rec : Recorders)
    Merged.merge(Rec);
  Out.P99Us = static_cast<double>(Merged.percentileNanos(99)) / 1e3;
  Out.RetiredMb =
      static_cast<double>(R.stats().RetiredBytes) / (1024.0 * 1024.0);
  return Out;
}

template <typename SetT>
RowResult runEpochRow(const Topology &Topo, unsigned Threads,
                      unsigned UpdatePct) {
  GCWorld W(structuresConfig(), Topo, Threads);
  structures::EpochReclaimer R(Threads);
  RowResult Out;
  std::vector<LatencyRecorder> Recorders(Threads);
  {
    SetT S(R);
    Out.Seconds = hammer(W, S, UpdatePct, Recorders);
    R.drain();
    Out.RetiredMb =
        static_cast<double>(R.stats().RetiredBytes) / (1024.0 * 1024.0);
    Out.ReclaimedMb =
        static_cast<double>(R.stats().ReclaimedBytes) / (1024.0 * 1024.0);
  }
  LatencyRecorder Merged;
  for (const LatencyRecorder &Rec : Recorders)
    Merged.merge(Rec);
  Out.P99Us = static_cast<double>(Merged.percentileNanos(99)) / 1e3;
  Report Rep = buildGCReport(W);
  Out.MaxPauseUs = Rep.value("pause.max_us");
  Out.SizeclassHits = Rep.value("alloc.sizeclass.hits");
  Out.SizeclassMisses = Rep.value("alloc.sizeclass.misses");
  Out.SizeclassFlushes = Rep.value("alloc.sizeclass.flushes");
  Out.Cycles = static_cast<double>(R.stats().EpochAdvances);
  return Out;
}

void emitRow(JsonReport &Json, const char *Machine, const char *Structure,
             const char *Reclaimer, unsigned Threads, unsigned UpdatePct,
             const RowResult &R) {
  const double TotalOps =
      static_cast<double>(Threads) * static_cast<double>(OpsPerThread);
  const double Mops = R.Seconds > 0 ? TotalOps / R.Seconds / 1e6 : 0;
  char Config[64];
  std::snprintf(Config, sizeof(Config), "%s/%s/t%u/u%u", Structure, Reclaimer,
                Threads, UpdatePct);
  Json.addRow(Machine, Config,
              {{"threads", static_cast<double>(Threads)},
               {"update_pct", static_cast<double>(UpdatePct)},
               {"mops", Mops},
               {"p99_us", R.P99Us},
               {"max_pause_us", R.MaxPauseUs},
               {"retired_mb", R.RetiredMb},
               {"reclaimed_mb", R.ReclaimedMb},
               {"cycles", R.Cycles},
               {"sizeclass_hits", R.SizeclassHits},
               {"sizeclass_misses", R.SizeclassMisses},
               {"sizeclass_flushes", R.SizeclassFlushes}});
  std::printf("%-8s %-9s %-11s %3u %4u%% %8.3f %9.1f %10.1f %9.3f %9.3f "
              "%6.0f\n",
              Machine, Structure, Reclaimer, Threads, UpdatePct, Mops, R.P99Us,
              R.MaxPauseUs, R.RetiredMb, R.ReclaimedMb, R.Cycles);
  std::fflush(stdout);
}

} // namespace

int main(int argc, char **argv) {
  BenchOptions Opts = BenchOptions::parse(
      argc, argv, "ablation_structures",
      "Lock-free list/skiplist under runtime-GC vs epoch-based "
      "reclamation: throughput, op-latency tail, GC pauses, and "
      "retired-vs-reclaimed bytes.");
  JsonReport Json("ablation_structures", Opts.JsonPath);

  const bool Quick = Opts.Quick;
  OpsPerThread = Quick ? 3000 : 40000;
  KeySpace = Quick ? 512 : 2048;
  const std::vector<unsigned> ThreadCounts =
      Quick ? std::vector<unsigned>{4} : std::vector<unsigned>{2, 4, 8};
  const std::vector<unsigned> UpdateRatios =
      Quick ? std::vector<unsigned>{10, 50}
            : std::vector<unsigned>{10, 50, 90};

  std::printf("Ablation: lock-free structures, runtime-GC vs epoch "
              "reclamation%s\n",
              Quick ? " [--quick]" : "");
  std::printf("(%d ops/thread, %u-key range; concurrent marking on for "
              "the GC rows; latency sampled 1-in-8)\n\n",
              OpsPerThread, KeySpace);
  std::printf("%-8s %-9s %-11s %3s %5s %8s %9s %10s %9s %9s %6s\n", "machine",
              "structure", "reclaimer", "thr", "upd", "mops", "p99-us",
              "max-pause", "retired", "reclaimed", "cycles");

  struct MachineDef {
    const char *Name;
    Topology Topo;
  };
  const MachineDef Machines[2] = {
      {"amd48", Topology::amdMagnyCours48()},
      {"intel32", Topology::intelXeon32()},
  };

  for (const MachineDef &M : Machines) {
    if (!Opts.runsTopology(M.Name))
      continue;
    for (unsigned Threads : ThreadCounts) {
      for (unsigned Upd : UpdateRatios) {
        emitRow(Json, M.Name, "list", "runtime-gc", Threads, Upd,
                runGcRow<structures::GcList, structures::GcReclaimer>(
                    M.Topo, Threads, Upd));
        emitRow(Json, M.Name, "list", "epoch", Threads, Upd,
                runEpochRow<structures::EpochList>(M.Topo, Threads, Upd));
        emitRow(Json, M.Name, "skiplist", "runtime-gc", Threads, Upd,
                runGcRow<structures::GcSkipList, structures::GcReclaimer>(
                    M.Topo, Threads, Upd));
        emitRow(Json, M.Name, "skiplist", "epoch", Threads, Upd,
                runEpochRow<structures::EpochSkipList>(M.Topo, Threads, Upd));
      }
    }
    std::printf("\n");
  }
  return Json.write() ? 0 : 1;
}
