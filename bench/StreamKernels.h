//===- bench/StreamKernels.h - STREAM triad on placed memory --------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The measurement core shared by bench_numa_stream and
/// table1_bandwidth's host column: a STREAM triad (a[i] = b[i] + q*c[i])
/// over arrays whose placement is controlled three ways, following
/// Bergstrom's "Measuring NUMA effects with the STREAM benchmark":
///
///   - fill threads pinned to the *memory* node's cpus, so first touch
///     places pages locally to that node even without libnuma;
///   - an mbind to the memory node (or MPOL_INTERLEAVE) layered on top
///     when the build carries libnuma, making placement deterministic;
///   - compute threads pinned to the *thread* node's cpus.
///
/// Bandwidth is the STREAM convention: 24 bytes per element per
/// iteration (two reads + one write), best timed repetition reported.
///
//===----------------------------------------------------------------------===//

#ifndef MANTI_BENCH_STREAMKERNELS_H
#define MANTI_BENCH_STREAMKERNELS_H

#include "numa/NumaOS.h"
#include "numa/Topology.h"

#include <algorithm>
#include <barrier>
#include <chrono>
#include <cstddef>
#include <thread>
#include <vector>

namespace manti::streambench {

struct TriadConfig {
  /// Doubles per array (three arrays total).
  std::size_t ElemsPerArray = 1 << 20;
  /// Timed repetitions; the best one is reported (STREAM convention).
  unsigned Reps = 5;
  /// OS cpus the compute threads pin to (one thread per entry; empty =
  /// one unpinned thread).
  std::vector<unsigned> ComputeCpus;
  /// OS cpus the fill (first-touch) threads pin to; empty = the compute
  /// threads fill, i.e. thread-local placement.
  std::vector<unsigned> FillCpus;
  /// mbind the arrays to this OS node before first touch (-1 = none).
  int BindOsNode = -1;
  /// mbind MPOL_INTERLEAVE across all nodes instead (overrides bind).
  bool Interleave = false;
};

struct TriadResult {
  double GBps = 0;    ///< best-rep triad bandwidth
  bool Bound = false; ///< an mbind/interleave policy really applied
  bool Pinned = true; ///< every pin request succeeded
};

/// Runs the triad sweep described by \p C. Thread k works the k-th
/// contiguous slice of each array; timing brackets barrier-synchronized
/// whole-array passes.
inline TriadResult runTriad(const TriadConfig &C) {
  const std::size_t N = C.ElemsPerArray;
  const unsigned Threads =
      std::max<unsigned>(1, static_cast<unsigned>(C.ComputeCpus.size()));
  const std::size_t Bytes = 3 * N * sizeof(double);

  TriadResult R;
  double *Mem = static_cast<double *>(numaos::mapPages(Bytes));
  if (!Mem)
    return R;
  if (C.Interleave)
    R.Bound = numaos::interleaveAllNodes(Mem, Bytes);
  else if (C.BindOsNode >= 0)
    R.Bound = numaos::bindToOsNode(Mem, Bytes,
                                   static_cast<unsigned>(C.BindOsNode));
  double *A = Mem, *B = Mem + N, *Cc = Mem + 2 * N;

  std::vector<double> RepSeconds(C.Reps, 0.0);
  std::barrier Sync(static_cast<std::ptrdiff_t>(Threads));
  std::vector<char> PinOk(Threads, 1); // not vector<bool>: threads race bits
  std::chrono::steady_clock::time_point T0;

  auto Worker = [&](unsigned K) {
    const std::size_t Lo = N * K / Threads;
    const std::size_t Hi = N * (K + 1) / Threads;

    // First touch: pin to the fill cpu (the memory node) if one is
    // given, else fall through to the compute pin so placement is
    // thread-local.
    if (!C.FillCpus.empty())
      PinOk[K] =
          numaos::pinThisThread(C.FillCpus[K % C.FillCpus.size()]) && PinOk[K];
    else if (!C.ComputeCpus.empty())
      PinOk[K] = numaos::pinThisThread(C.ComputeCpus[K]) && PinOk[K];
    for (std::size_t I = Lo; I < Hi; ++I) {
      A[I] = 1.0;
      B[I] = 2.0;
      Cc[I] = 0.5;
    }
    Sync.arrive_and_wait();

    if (!C.FillCpus.empty() && !C.ComputeCpus.empty())
      PinOk[K] = numaos::pinThisThread(C.ComputeCpus[K]) && PinOk[K];
    Sync.arrive_and_wait();

    for (unsigned Rep = 0; Rep < C.Reps; ++Rep) {
      Sync.arrive_and_wait(); // align the pass
      if (K == 0)
        T0 = std::chrono::steady_clock::now();
      Sync.arrive_and_wait(); // T0 is stamped before anyone computes
      const double Q = 3.0;
      for (std::size_t I = Lo; I < Hi; ++I)
        A[I] = B[I] + Q * Cc[I];
      Sync.arrive_and_wait();
      if (K == 0)
        RepSeconds[Rep] =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          T0)
                .count();
    }
  };

  std::vector<std::thread> Pool;
  for (unsigned K = 1; K < Threads; ++K)
    Pool.emplace_back(Worker, K);
  Worker(0);
  for (std::thread &T : Pool)
    T.join();

  double Best = *std::min_element(RepSeconds.begin(), RepSeconds.end());
  if (Best > 0)
    R.GBps = 24.0 * static_cast<double>(N) / Best / 1e9;
  R.Pinned = std::all_of(PinOk.begin(), PinOk.end(), [](bool P) { return P; });
  numaos::unmapPages(Mem, Bytes);
  return R;
}

/// OS cpus of \p Node under \p Topo, capped at \p MaxCpus.
inline std::vector<unsigned> nodeCpus(const Topology &Topo, NodeId Node,
                                      unsigned MaxCpus) {
  std::vector<unsigned> Cpus;
  unsigned Take = std::min(Topo.coresPerNode(), MaxCpus);
  for (unsigned C = 0; C < Take; ++C)
    Cpus.push_back(Topo.osCpuOfCore(Node * Topo.coresPerNode() + C));
  return Cpus;
}

} // namespace manti::streambench

#endif // MANTI_BENCH_STREAMKERNELS_H
