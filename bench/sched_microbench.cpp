//===- bench/sched_microbench.cpp - scheduler microbenchmarks -------------===//
//
// Part of the manticore-gc project.
//
// Spawn/join overhead, steal-handshake latency, and channel round trips
// on the real runtime.
//
//===----------------------------------------------------------------------===//

#include "runtime/Channel.h"
#include "runtime/Parallel.h"
#include "runtime/Runtime.h"

#include <benchmark/benchmark.h>

using namespace manti;

namespace {

RuntimeConfig benchRuntimeConfig(unsigned VProcs) {
  RuntimeConfig Cfg;
  Cfg.GC.LocalHeapBytes = 512 * 1024;
  Cfg.GC.GlobalGCBytesPerVProc = 64 * 1024 * 1024;
  Cfg.NumVProcs = VProcs;
  Cfg.PinThreads = false;
  return Cfg;
}

} // namespace

/// Fork-join spawn/sync overhead: empty parallelFor bodies.
static void BM_SpawnJoin(benchmark::State &State) {
  static Runtime *RT;
  Runtime Local(benchRuntimeConfig(1), Topology::singleNode(1));
  RT = &Local;
  int64_t Tasks = State.range(0);
  for (auto _ : State) {
    struct Ctx {
      int64_t Tasks;
    } C{Tasks};
    RT->run(
        [](Runtime &RT, VProc &VP, void *CtxP) {
          auto *C = static_cast<Ctx *>(CtxP);
          parallelFor(
              RT, VP, 0, C->Tasks, 1,
              [](Runtime &, VProc &, int64_t, int64_t, void *) {},
              nullptr);
        },
        &C);
  }
  State.SetItemsProcessed(State.iterations() * Tasks);
}
BENCHMARK(BM_SpawnJoin)->Arg(64)->Arg(1024);

/// Local deque push/pop through VProc::spawn + runOneLocal.
static void BM_LocalDeque(benchmark::State &State) {
  Runtime RT(benchRuntimeConfig(1), Topology::singleNode(1));
  static int64_t Sink;
  RT.run(
      [](Runtime &, VProc &, void *) {},
      nullptr); // warm the scheduler epoch
  VProc &VP = RT.vproc(0);
  for (auto _ : State) {
    VP.spawn({[](Runtime &, VProc &, Task) { ++Sink; }, nullptr,
              Value::nil(), 0, 0});
    VP.runOneLocal();
  }
  benchmark::DoNotOptimize(Sink);
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_LocalDeque);

/// Channel round trip between two vprocs (send + recv of a small value).
static void BM_ChannelPingPong(benchmark::State &State) {
  Runtime RT(benchRuntimeConfig(2), Topology::uniform(2, 1));
  static Channel *Chan;
  Channel C(RT);
  Chan = &C;
  static int64_t Rounds;
  Rounds = static_cast<int64_t>(State.max_iterations);
  // One run: a responder task ping-pongs with the main vproc.
  static benchmark::State *St;
  St = &State;
  RT.run(
      [](Runtime &, VProc &VP, void *) {
        static JoinCounter Join;
        Join.add();
        VP.spawn({[](Runtime &, VProc &VP, Task) {
                    for (int64_t I = 0; I < Rounds; ++I) {
                      Value V = Chan->recv(VP);
                      Chan->send(VP, Value::fromInt(V.asInt() + 1));
                    }
                    Join.sub();
                  },
                  nullptr, Value::nil(), 0, 0});
        int64_t I = 0;
        for (auto _ : *St) {
          Chan->send(VP, Value::fromInt(I));
          Value R = Chan->recv(VP);
          benchmark::DoNotOptimize(R);
          ++I;
        }
        // Satisfy the responder's loop if the framework stopped early.
        for (; I < Rounds; ++I) {
          Chan->send(VP, Value::fromInt(I));
          Chan->recv(VP);
        }
        VP.joinWait(Join);
      },
      nullptr);
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_ChannelPingPong)->Iterations(2000);

BENCHMARK_MAIN();
