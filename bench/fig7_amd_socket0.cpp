//===- bench/fig7_amd_socket0.cpp - reproduce paper Figure 7 --------------===//
//
// Part of the manticore-gc project.
// "Comparative speedup plots for five benchmarks on AMD hardware with
// socket zero memory allocation." (All pages on one node, the default a
// single-threaded collector inherits; plotted relative to the
// single-processor performance of the local-allocation runs.)
//
//===----------------------------------------------------------------------===//

#include "FigureMain.h"

using namespace manti;
using namespace manti::sim;

int main(int argc, char **argv) {
  return runFigure(
      argc, argv, "fig7_amd_socket0",
      "Figure 7: speedups on the 48-core AMD machine, socket-zero "
      "allocation",
      "(every page on node 0; baseline = 1-thread LOCAL-policy run, as in "
      "the paper)",
      SimMachine::amd48(), AllocPolicyKind::SingleNode,
      AllocPolicyKind::Local, amdThreadAxis());
}
