//===- bench/GCBenchUtils.h - shared helpers for bench binaries -----------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//

#ifndef MANTI_BENCH_GCBENCHUTILS_H
#define MANTI_BENCH_GCBENCHUTILS_H

#include "gc/Handles.h"
#include "gc/Heap.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

namespace manti::benchutil {

/// Runs \p Body once per vproc, each on its own thread, then drains:
/// every thread keeps hitting safe points until all are done and no
/// global collection is pending (a collection needs all vprocs at its
/// barriers, so nobody may leave early).
template <typename BodyT> void runOnWorldThreads(GCWorld &W, BodyT Body) {
  std::atomic<unsigned> Done{0};
  std::vector<std::thread> Threads;
  for (unsigned I = 0; I < W.numVProcs(); ++I) {
    Threads.emplace_back([&W, I, &Body, &Done] {
      VProcHeap &H = W.heap(I);
      Body(H);
      Done.fetch_add(1, std::memory_order_acq_rel);
      while (Done.load(std::memory_order_acquire) < W.numVProcs() ||
             W.globalGCPending()) {
        H.safePoint();
        std::this_thread::yield();
      }
    });
  }
  for (std::thread &T : Threads)
    T.join();
}

/// Builds a cons list of N tagged integers (vector cells [head, tail]).
inline Value makeIntListB(VProcHeap &H, int64_t N) {
  RootScope S(H);
  Ref<> List = S.root(Value::nil());
  for (int64_t I = 0; I < N; ++I) {
    RootScope Inner(H);
    Ref<> Cell = allocVectorOf(Inner, Value::fromInt(I), List);
    List = Cell.value();
  }
  return List.value();
}

/// Keeps a value observably alive without benchmark library support.
inline void benchmarkSink(int64_t V) {
  static volatile int64_t Sink;
  Sink = V;
  (void)Sink;
}

} // namespace manti::benchutil

#endif // MANTI_BENCH_GCBENCHUTILS_H
