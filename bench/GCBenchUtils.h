//===- bench/GCBenchUtils.h - shared helpers for bench binaries -----------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//

#ifndef MANTI_BENCH_GCBENCHUTILS_H
#define MANTI_BENCH_GCBENCHUTILS_H

#include "gc/Handles.h"
#include "gc/Heap.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace manti::benchutil {

//===----------------------------------------------------------------------===//
// Command line (--quick / --json / --topology / --help)
//===----------------------------------------------------------------------===//

/// The one bench-driver command line, shared by every bench and figure
/// binary (no per-bench argv scanning):
///
///   --quick            scaled-down workload for CI smoke lanes
///   --json <path>      also write machine-readable rows (JsonReport)
///   --topology <name>  run only the machine whose Topology::name()
///                      matches (e.g. "amd48", "intel32"); default all
///   --help             usage text, exit 0
///
/// Unknown arguments print the usage text to stderr and exit 2, so a
/// typo'd flag can never silently run the full sweep.
struct BenchOptions {
  bool Quick = false;
  const char *JsonPath = nullptr;
  const char *TopologyName = nullptr;

  static BenchOptions parse(int argc, char **argv, const char *Bench,
                            const char *Description) {
    BenchOptions Opts;
    for (int I = 1; I < argc; ++I) {
      const char *Arg = argv[I];
      if (std::strcmp(Arg, "--quick") == 0) {
        Opts.Quick = true;
      } else if (std::strcmp(Arg, "--json") == 0 && I + 1 < argc) {
        Opts.JsonPath = argv[++I];
      } else if (std::strcmp(Arg, "--topology") == 0 && I + 1 < argc) {
        Opts.TopologyName = argv[++I];
      } else if (std::strcmp(Arg, "--help") == 0 ||
                 std::strcmp(Arg, "-h") == 0) {
        usage(stdout, Bench, Description);
        std::exit(0);
      } else {
        std::fprintf(stderr, "%s: unknown argument '%s'\n\n", Bench, Arg);
        usage(stderr, Bench, Description);
        std::exit(2);
      }
    }
    return Opts;
  }

  /// \returns true when \p Name's machine should run under the
  /// --topology filter (always true without the flag).
  bool runsTopology(const char *Name) const {
    return !TopologyName || std::strcmp(TopologyName, Name) == 0;
  }
  bool runsTopology(const std::string &Name) const {
    return runsTopology(Name.c_str());
  }

private:
  static void usage(std::FILE *Out, const char *Bench,
                    const char *Description) {
    std::fprintf(Out,
                 "usage: %s [--quick] [--json <path>] [--topology <name>]\n"
                 "\n%s\n\n"
                 "  --quick            scaled-down workload (CI smoke)\n"
                 "  --json <path>      also write machine-readable rows\n"
                 "  --topology <name>  run only that machine (e.g. amd48)\n"
                 "  --help             this text\n",
                 Bench, Description);
  }
};

//===----------------------------------------------------------------------===//
// Machine-readable results (--json <path>)
//===----------------------------------------------------------------------===//

/// Collects one JSON object per printed table row and writes them as an
/// array, one row per line:
///
///   [{"bench": "...", "topology": "...", "config": "...",
///     "metrics": {"seconds": 1.25, ...}},
///    ...]
///
/// The schema is deliberately flat -- CI uploads the file as a
/// BENCH_<name>.json artifact, and trajectory tooling needs only
/// (bench, topology, config) as the series key and metrics as numbers.
/// Metric values are finite doubles; names are plain identifiers, so
/// escaping only has to cover the free-form config strings.
class JsonReport {
public:
  /// \p Bench names the binary's series (e.g. "ablation_rebalance");
  /// \p Path may be nullptr (every add/write becomes a no-op).
  JsonReport(std::string Bench, const char *Path)
      : Bench(std::move(Bench)), Path(Path ? Path : "") {}

  bool enabled() const { return !Path.empty(); }

  void addRow(const std::string &Topology, const std::string &Config,
              std::vector<std::pair<std::string, double>> Metrics) {
    if (!enabled())
      return;
    std::string Row = "{\"bench\": ";
    appendString(Row, Bench);
    Row += ", \"topology\": ";
    appendString(Row, Topology);
    Row += ", \"config\": ";
    appendString(Row, Config);
    Row += ", \"metrics\": {";
    bool First = true;
    for (const auto &[Name, V] : Metrics) {
      if (!First)
        Row += ", ";
      First = false;
      appendString(Row, Name);
      char Buf[48];
      std::snprintf(Buf, sizeof(Buf), ": %.6g", V);
      Row += Buf;
    }
    Row += "}}";
    Rows.push_back(std::move(Row));
  }

  /// Writes the collected rows to the path given at construction.
  /// \returns false (after a note on stderr) when the file cannot be
  /// written; callers treat that as a bench failure so CI artifacts
  /// cannot silently go missing.
  bool write() const {
    if (!enabled())
      return true;
    std::FILE *F = std::fopen(Path.c_str(), "w");
    if (!F) {
      std::fprintf(stderr, "error: cannot write --json file %s\n",
                   Path.c_str());
      return false;
    }
    std::fputs("[\n", F);
    for (std::size_t I = 0; I < Rows.size(); ++I)
      std::fprintf(F, "  %s%s\n", Rows[I].c_str(),
                   I + 1 < Rows.size() ? "," : "");
    std::fputs("]\n", F);
    std::fclose(F);
    std::printf("\nwrote %zu JSON row(s) to %s\n", Rows.size(),
                Path.c_str());
    return true;
  }

private:
  static void appendString(std::string &Out, const std::string &S) {
    Out += '"';
    for (char C : S) {
      if (C == '"' || C == '\\')
        Out += '\\';
      Out += C;
    }
    Out += '"';
  }

  std::string Bench;
  std::string Path;
  std::vector<std::string> Rows;
};

/// Runs \p Body once per vproc, each on its own thread, then drains:
/// every thread keeps hitting safe points until all are done and no
/// global collection is pending (a collection needs all vprocs at its
/// barriers, so nobody may leave early).
template <typename BodyT> void runOnWorldThreads(GCWorld &W, BodyT Body) {
  std::atomic<unsigned> Done{0};
  std::vector<std::thread> Threads;
  for (unsigned I = 0; I < W.numVProcs(); ++I) {
    Threads.emplace_back([&W, I, &Body, &Done] {
      VProcHeap &H = W.heap(I);
      Body(H);
      Done.fetch_add(1, std::memory_order_acq_rel);
      while (Done.load(std::memory_order_acquire) < W.numVProcs() ||
             W.globalGCPending()) {
        H.safePoint();
        std::this_thread::yield();
      }
    });
  }
  for (std::thread &T : Threads)
    T.join();
}

/// Builds a cons list of N tagged integers (vector cells [head, tail]).
inline Value makeIntListB(VProcHeap &H, int64_t N) {
  RootScope S(H);
  Ref<> List = S.root(Value::nil());
  for (int64_t I = 0; I < N; ++I) {
    RootScope Inner(H);
    Ref<> Cell = allocVectorOf(Inner, Value::fromInt(I), List);
    List = Cell.value();
  }
  return List.value();
}

/// Keeps a value observably alive without benchmark library support.
inline void benchmarkSink(int64_t V) {
  static volatile int64_t Sink;
  Sink = V;
  (void)Sink;
}

} // namespace manti::benchutil

#endif // MANTI_BENCH_GCBENCHUTILS_H
