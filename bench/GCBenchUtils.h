//===- bench/GCBenchUtils.h - shared helpers for bench binaries -----------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//

#ifndef MANTI_BENCH_GCBENCHUTILS_H
#define MANTI_BENCH_GCBENCHUTILS_H

#include "gc/Handles.h"
#include "gc/Heap.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace manti::benchutil {

//===----------------------------------------------------------------------===//
// Machine-readable results (--json <path>)
//===----------------------------------------------------------------------===//

/// Returns the path following a `--json` argument, or nullptr when the
/// flag is absent. (Shared by every bench that also prints its human
/// table; `--quick` parsing stays per-bench.)
inline const char *jsonPathFromArgs(int argc, char **argv) {
  for (int I = 1; I + 1 < argc; ++I)
    if (std::strcmp(argv[I], "--json") == 0)
      return argv[I + 1];
  return nullptr;
}

/// Collects one JSON object per printed table row and writes them as an
/// array, one row per line:
///
///   [{"bench": "...", "topology": "...", "config": "...",
///     "metrics": {"seconds": 1.25, ...}},
///    ...]
///
/// The schema is deliberately flat -- CI uploads the file as a
/// BENCH_<name>.json artifact, and trajectory tooling needs only
/// (bench, topology, config) as the series key and metrics as numbers.
/// Metric values are finite doubles; names are plain identifiers, so
/// escaping only has to cover the free-form config strings.
class JsonReport {
public:
  /// \p Bench names the binary's series (e.g. "ablation_rebalance");
  /// \p Path may be nullptr (every add/write becomes a no-op).
  JsonReport(std::string Bench, const char *Path)
      : Bench(std::move(Bench)), Path(Path ? Path : "") {}

  bool enabled() const { return !Path.empty(); }

  void addRow(const std::string &Topology, const std::string &Config,
              std::vector<std::pair<std::string, double>> Metrics) {
    if (!enabled())
      return;
    std::string Row = "{\"bench\": ";
    appendString(Row, Bench);
    Row += ", \"topology\": ";
    appendString(Row, Topology);
    Row += ", \"config\": ";
    appendString(Row, Config);
    Row += ", \"metrics\": {";
    bool First = true;
    for (const auto &[Name, V] : Metrics) {
      if (!First)
        Row += ", ";
      First = false;
      appendString(Row, Name);
      char Buf[48];
      std::snprintf(Buf, sizeof(Buf), ": %.6g", V);
      Row += Buf;
    }
    Row += "}}";
    Rows.push_back(std::move(Row));
  }

  /// Writes the collected rows to the path given at construction.
  /// \returns false (after a note on stderr) when the file cannot be
  /// written; callers treat that as a bench failure so CI artifacts
  /// cannot silently go missing.
  bool write() const {
    if (!enabled())
      return true;
    std::FILE *F = std::fopen(Path.c_str(), "w");
    if (!F) {
      std::fprintf(stderr, "error: cannot write --json file %s\n",
                   Path.c_str());
      return false;
    }
    std::fputs("[\n", F);
    for (std::size_t I = 0; I < Rows.size(); ++I)
      std::fprintf(F, "  %s%s\n", Rows[I].c_str(),
                   I + 1 < Rows.size() ? "," : "");
    std::fputs("]\n", F);
    std::fclose(F);
    std::printf("\nwrote %zu JSON row(s) to %s\n", Rows.size(),
                Path.c_str());
    return true;
  }

private:
  static void appendString(std::string &Out, const std::string &S) {
    Out += '"';
    for (char C : S) {
      if (C == '"' || C == '\\')
        Out += '\\';
      Out += C;
    }
    Out += '"';
  }

  std::string Bench;
  std::string Path;
  std::vector<std::string> Rows;
};

/// Runs \p Body once per vproc, each on its own thread, then drains:
/// every thread keeps hitting safe points until all are done and no
/// global collection is pending (a collection needs all vprocs at its
/// barriers, so nobody may leave early).
template <typename BodyT> void runOnWorldThreads(GCWorld &W, BodyT Body) {
  std::atomic<unsigned> Done{0};
  std::vector<std::thread> Threads;
  for (unsigned I = 0; I < W.numVProcs(); ++I) {
    Threads.emplace_back([&W, I, &Body, &Done] {
      VProcHeap &H = W.heap(I);
      Body(H);
      Done.fetch_add(1, std::memory_order_acq_rel);
      while (Done.load(std::memory_order_acquire) < W.numVProcs() ||
             W.globalGCPending()) {
        H.safePoint();
        std::this_thread::yield();
      }
    });
  }
  for (std::thread &T : Threads)
    T.join();
}

/// Builds a cons list of N tagged integers (vector cells [head, tail]).
inline Value makeIntListB(VProcHeap &H, int64_t N) {
  RootScope S(H);
  Ref<> List = S.root(Value::nil());
  for (int64_t I = 0; I < N; ++I) {
    RootScope Inner(H);
    Ref<> Cell = allocVectorOf(Inner, Value::fromInt(I), List);
    List = Cell.value();
  }
  return List.value();
}

/// Keeps a value observably alive without benchmark library support.
inline void benchmarkSink(int64_t V) {
  static volatile int64_t Sink;
  Sink = V;
  (void)Sink;
}

} // namespace manti::benchutil

#endif // MANTI_BENCH_GCBENCHUTILS_H
