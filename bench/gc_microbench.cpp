//===- bench/gc_microbench.cpp - collector microbenchmarks ----------------===//
//
// Part of the manticore-gc project.
//
// google-benchmark measurements of the real (not simulated) collector:
// bump allocation, minor/major collection throughput, promotion cost,
// and global collection pause, plus the descriptor-driven scanning the
// paper's Section 3.2 motivates.
//
//===----------------------------------------------------------------------===//

// This bench measures the *raw* allocation paths beneath the handle
// layer (the same surface the collectors use), so it opts into the
// internal API deliberately.
#define MANTI_GC_INTERNAL 1

#include "gc/Handles.h"
#include "gc/HeapInternal.h"
#include "gc/HeapVerifier.h"
#include "numa/Topology.h"

#include <benchmark/benchmark.h>

#include <deque>
#include <vector>

using namespace manti;

namespace {

GCConfig benchConfig() {
  GCConfig Cfg;
  Cfg.LocalHeapBytes = 1024 * 1024;
  Cfg.MinNurseryBytes = 64 * 1024;
  Cfg.ChunkBytes = 256 * 1024;
  Cfg.GlobalGCBytesPerVProc = 64 * 1024 * 1024; // avoid surprise globals
  return Cfg;
}

Value makeList(VProcHeap &H, int64_t N) {
  GcFrame Frame(H);
  Value List = Value::nil();
  Frame.root(List);
  for (int64_t I = 0; I < N; ++I) {
    Value Elems[2] = {Value::fromInt(I), List};
    GcFrame Inner(H);
    Inner.root(Elems[0]);
    Inner.root(Elems[1]);
    List = H.allocVector(Elems, 2);
  }
  return List;
}

} // namespace

/// Bump allocation in the nursery ("functional-language implementations
/// are notorious for their high rate of memory allocation").
static void BM_NurseryAlloc(benchmark::State &State) {
  GCWorld World(benchConfig(), Topology::singleNode(1), 1);
  VProcHeap &H = World.heap(0);
  int64_t Words = State.range(0);
  for (auto _ : State) {
    Value V = H.allocRaw(nullptr, Words * 8);
    benchmark::DoNotOptimize(V);
  }
  State.SetBytesProcessed(State.iterations() * (Words + 1) * 8);
}
BENCHMARK(BM_NurseryAlloc)->Arg(2)->Arg(8)->Arg(64);

/// The same bump allocation through the out-of-line twin of the fast
/// path (the pre-inlining code shape, kept for exactly this comparison):
/// the delta against BM_NurseryAlloc is what header-inlining the
/// tryAlloc fast path buys per allocation.
static void BM_NurseryAllocOutlined(benchmark::State &State) {
  GCWorld World(benchConfig(), Topology::singleNode(1), 1);
  VProcHeap &H = World.heap(0);
  int64_t Words = State.range(0);
  for (auto _ : State) {
    Value V = gcinternal::HeapAccess::allocRawOutlined(H, nullptr, Words * 8);
    benchmark::DoNotOptimize(V);
  }
  State.SetBytesProcessed(State.iterations() * (Words + 1) * 8);
}
BENCHMARK(BM_NurseryAllocOutlined)->Arg(2)->Arg(8)->Arg(64);

/// Allocate a fresh live list, then minor-collect it: measures the
/// mutator-allocation plus nursery-copy cycle at a given live size.
static void BM_MinorGC(benchmark::State &State) {
  GCWorld World(benchConfig(), Topology::singleNode(1), 1);
  VProcHeap &H = World.heap(0);
  int64_t LiveCells = State.range(0);
  for (auto _ : State) {
    GcFrame Frame(H);
    Value &Live = Frame.root(makeList(H, LiveCells));
    H.minorGC();
    benchmark::DoNotOptimize(Live);
  }
  State.SetBytesProcessed(State.iterations() * LiveCells * 24);
}
BENCHMARK(BM_MinorGC)->Arg(64)->Arg(256)->Arg(2048);

/// Major collection: evacuating the old area to the global heap.
static void BM_MajorGC(benchmark::State &State) {
  GCWorld World(benchConfig(), Topology::singleNode(1), 1);
  VProcHeap &H = World.heap(0);
  int64_t Cells = State.range(0);
  for (auto _ : State) {
    State.PauseTiming();
    GcFrame Frame(H);
    Value &List = Frame.root(makeList(H, Cells));
    H.minorGC();
    H.minorGC(); // age the data into the old area
    State.ResumeTiming();
    H.majorGC();
    benchmark::DoNotOptimize(List);
  }
  State.SetBytesProcessed(State.iterations() * Cells * 24);
}
BENCHMARK(BM_MajorGC)->Arg(256)->Arg(2048)->Arg(8192);

/// Promotion: the cost of sharing an object graph (the burden the lazy
/// stealing scheme exists to avoid).
static void BM_Promotion(benchmark::State &State) {
  GCWorld World(benchConfig(), Topology::singleNode(1), 1);
  VProcHeap &H = World.heap(0);
  int64_t Cells = State.range(0);
  for (auto _ : State) {
    State.PauseTiming();
    GcFrame Frame(H);
    Value &List = Frame.root(makeList(H, Cells));
    State.ResumeTiming();
    Value P = H.promote(List);
    benchmark::DoNotOptimize(P);
  }
  State.SetBytesProcessed(State.iterations() * Cells * 24);
}
BENCHMARK(BM_Promotion)->Arg(16)->Arg(256)->Arg(4096);

/// Parallel stop-the-world global collection, single vproc (pause floor).
static void BM_GlobalGC(benchmark::State &State) {
  GCConfig Cfg = benchConfig();
  GCWorld World(Cfg, Topology::singleNode(1), 1);
  VProcHeap &H = World.heap(0);
  GcFrame Frame(H);
  Value &Live = Frame.root(makeList(H, State.range(0)));
  Live = H.promote(Live);
  for (auto _ : State) {
    World.requestGlobalGC();
    H.safePoint();
    benchmark::DoNotOptimize(Live);
  }
  State.counters["live_cells"] = static_cast<double>(State.range(0));
}
BENCHMARK(BM_GlobalGC)->Arg(256)->Arg(4096)->Arg(16384);

/// Mostly-concurrent cycle, single vproc: measures the whole-cycle cost
/// (both rendezvous plus assist-driven tracing -- with one vproc nothing
/// actually overlaps). Compare against BM_GlobalGC for the mark-sweep
/// vs copying-collection cost at the same live size; the *pause* win
/// shows up in bench_serving_kv, not here.
static void BM_ConcurrentGlobalGC(benchmark::State &State) {
  GCConfig Cfg = benchConfig();
  Cfg.ConcurrentGlobal = true;
  GCWorld World(Cfg, Topology::singleNode(1), 1);
  VProcHeap &H = World.heap(0);
  GcFrame Frame(H);
  Value &Live = Frame.root(makeList(H, State.range(0)));
  Live = H.promote(Live);
  for (auto _ : State) {
    World.startConcurrentMark();
    while (World.collectionInProgress())
      H.safePoint();
    benchmark::DoNotOptimize(Live);
  }
  State.counters["live_cells"] = static_cast<double>(State.range(0));
}
BENCHMARK(BM_ConcurrentGlobalGC)->Arg(256)->Arg(4096)->Arg(16384);

/// Descriptor-driven scanning: allocate a chain of mixed objects and
/// minor-collect it, exercising the per-type generated scanners
/// (Section 3.2) on every copy.
static void BM_MixedObjectScan(benchmark::State &State) {
  GCWorld World(benchConfig(), Topology::singleNode(1), 1);
  uint16_t Id = World.descriptors().registerMixed("bench-node", 4, {0, 1});
  VProcHeap &H = World.heap(0);
  int64_t Chain = State.range(0);
  for (auto _ : State) {
    GcFrame Frame(H);
    Value &Root = Frame.root(Value::nil());
    for (int64_t I = 0; I < Chain; ++I) {
      Word Fields[4] = {Root.bits(), Root.bits(), 7, 9};
      Value *Slots[2] = {&Root, &Root};
      Root = gcinternal::allocMixedRooted(H, Id, Fields, Slots);
    }
    H.minorGC();
    benchmark::DoNotOptimize(Root);
  }
  State.SetItemsProcessed(State.iterations() * Chain);
}
BENCHMARK(BM_MixedObjectScan)->Arg(512)->Arg(4096);

/// Small-vector allocation through the size-class cache: after the
/// first refill, every allocation of the same class is a freelist pop.
/// Compare against BM_VectorAllocCold (cache disabled) for what the
/// cache buys on the vector path.
static void BM_VectorAlloc(benchmark::State &State) {
  GCWorld World(benchConfig(), Topology::singleNode(1), 1);
  VProcHeap &H = World.heap(0);
  std::size_t N = static_cast<std::size_t>(State.range(0));
  Value Elems[16] = {};
  GcFrame Frame(H);
  for (std::size_t I = 0; I < N; ++I) {
    Elems[I] = Value::fromInt(static_cast<int64_t>(I));
    Frame.root(Elems[I]);
  }
  for (auto _ : State) {
    Value V = H.allocVector(Elems, N);
    benchmark::DoNotOptimize(V);
  }
  State.SetBytesProcessed(State.iterations() * (N + 1) * 8);
  GCStats S = World.aggregateStats();
  State.counters["hit_rate"] =
      static_cast<double>(S.SizeClassHits) /
      static_cast<double>(S.SizeClassHits + S.SizeClassMisses);
}
BENCHMARK(BM_VectorAlloc)->Arg(2)->Arg(8);

/// The same vector allocations with GCConfig::SizeClassCache off: every
/// allocation takes the pre-cache path (slow-path call, header write,
/// per-allocation stress gate). The kept baseline for the delta.
static void BM_VectorAllocCold(benchmark::State &State) {
  GCConfig Cfg = benchConfig();
  Cfg.SizeClassCache = false;
  GCWorld World(Cfg, Topology::singleNode(1), 1);
  VProcHeap &H = World.heap(0);
  std::size_t N = static_cast<std::size_t>(State.range(0));
  Value Elems[16] = {};
  GcFrame Frame(H);
  for (std::size_t I = 0; I < N; ++I) {
    Elems[I] = Value::fromInt(static_cast<int64_t>(I));
    Frame.root(Elems[I]);
  }
  for (auto _ : State) {
    Value V = H.allocVector(Elems, N);
    benchmark::DoNotOptimize(V);
  }
  State.SetBytesProcessed(State.iterations() * (N + 1) * 8);
}
BENCHMARK(BM_VectorAllocCold)->Arg(2)->Arg(8);

/// Handle-layer root registration: one RootScope with N rooted slots,
/// opened and torn down per iteration. This is the fixed overhead every
/// handle-using operation pays before touching the heap (the
/// lock-free-structure ops in src/structures/ open one per retry loop).
/// RootScope stores slots in registered slabs; BM_RootScopeRegisterDeque
/// below replays the retired per-slot design for the delta.
static void BM_RootScopeRegister(benchmark::State &State) {
  GCWorld World(benchConfig(), Topology::singleNode(1), 1);
  VProcHeap &H = World.heap(0);
  int64_t Roots = State.range(0);
  for (auto _ : State) {
    RootScope Scope(H);
    for (int64_t I = 0; I < Roots; ++I) {
      Ref<> R = Scope.root(Value::fromInt(I));
      benchmark::DoNotOptimize(R);
    }
  }
  State.SetItemsProcessed(State.iterations() * Roots);
}
BENCHMARK(BM_RootScopeRegister)->Arg(1)->Arg(4)->Arg(16);

namespace {

/// Bench-local replica of the pre-slab RootScope storage: a deque of
/// owned slots, each individually pushed onto (and popped from) the
/// shadow stack. Kept only so BM_RootScopeRegisterDeque keeps measuring
/// what the slabbed scope replaced.
class DequeRootScope {
public:
  explicit DequeRootScope(VProcHeap &H)
      : H(H), Mark(H.ShadowStack.size()) {}
  ~DequeRootScope() { H.ShadowStack.resize(Mark); }
  Value &slot(Value V) {
    Owned.push_back(V);
    H.ShadowStack.push_back(&Owned.back());
    return Owned.back();
  }

private:
  VProcHeap &H;
  std::size_t Mark;
  std::deque<Value> Owned;
};

} // namespace

/// The retired per-slot registration path (deque storage + individual
/// shadow-stack pushes), measured through a bench-local replica: the
/// kept baseline BM_RootScopeRegister is compared against.
static void BM_RootScopeRegisterDeque(benchmark::State &State) {
  GCWorld World(benchConfig(), Topology::singleNode(1), 1);
  VProcHeap &H = World.heap(0);
  int64_t Roots = State.range(0);
  for (auto _ : State) {
    DequeRootScope Scope(H);
    for (int64_t I = 0; I < Roots; ++I) {
      Value &S = Scope.slot(Value::fromInt(I));
      benchmark::DoNotOptimize(S);
    }
  }
  State.SetItemsProcessed(State.iterations() * Roots);
}
BENCHMARK(BM_RootScopeRegisterDeque)->Arg(1)->Arg(4)->Arg(16);

namespace {

/// Shared body of the BM_MinorScanPrefetch{On,Off} twins: allocate a
/// live list bigger than any cache level's worth of hot data, then
/// minor-collect it with the scan-loop prefetch on or off.
void minorScanBench(benchmark::State &State, bool Prefetch) {
  GCConfig Cfg = benchConfig();
  Cfg.ScanPrefetch = Prefetch;
  GCWorld World(Cfg, Topology::singleNode(1), 1);
  VProcHeap &H = World.heap(0);
  int64_t LiveCells = State.range(0);
  for (auto _ : State) {
    GcFrame Frame(H);
    Value &Live = Frame.root(makeList(H, LiveCells));
    H.minorGC();
    benchmark::DoNotOptimize(Live);
  }
  State.SetBytesProcessed(State.iterations() * LiveCells * 24);
}

} // namespace

static void BM_MinorScanPrefetchOn(benchmark::State &State) {
  minorScanBench(State, true);
}
BENCHMARK(BM_MinorScanPrefetchOn)->Arg(2048)->Arg(8192);

static void BM_MinorScanPrefetchOff(benchmark::State &State) {
  minorScanBench(State, false);
}
BENCHMARK(BM_MinorScanPrefetchOff)->Arg(2048)->Arg(8192);

/// Handle assignment through the SATB deletion barrier: overwriting a
/// rooted slot mid concurrent mark must record the dropped value. The
/// Idle/ConcMark pair prices the barrier's fast path (phase check only)
/// against its taken path (record into the SATB buffer).
static void BM_RefAssign(benchmark::State &State) {
  GCConfig Cfg = benchConfig();
  Cfg.ConcurrentGlobal = true;
  GCWorld World(Cfg, Topology::singleNode(1), 1);
  VProcHeap &H = World.heap(0);
  RootScope Scope(H);
  Ref<> A = Scope.root(makeList(H, 4));
  Ref<> B = Scope.root(makeList(H, 4));
  Ref<> Slot = Scope.root(A.value());
  const bool MidMark = State.range(0) != 0;
  if (MidMark) {
    World.startConcurrentMark();
    H.safePoint(); // join the snapshot rendezvous; marking is now live
  }
  bool Flip = false;
  for (auto _ : State) {
    Slot = Flip ? A.value() : B.value();
    Flip = !Flip;
    benchmark::DoNotOptimize(Slot);
  }
  if (MidMark)
    while (World.collectionInProgress())
      H.safePoint();
  State.SetItemsProcessed(State.iterations());
  State.counters["mid_mark"] = MidMark ? 1 : 0;
}
BENCHMARK(BM_RefAssign)->Arg(0)->Arg(1);

BENCHMARK_MAIN();
