//===- bench/gc_microbench.cpp - collector microbenchmarks ----------------===//
//
// Part of the manticore-gc project.
//
// google-benchmark measurements of the real (not simulated) collector:
// bump allocation, minor/major collection throughput, promotion cost,
// and global collection pause, plus the descriptor-driven scanning the
// paper's Section 3.2 motivates.
//
//===----------------------------------------------------------------------===//

// This bench measures the *raw* allocation paths beneath the handle
// layer (the same surface the collectors use), so it opts into the
// internal API deliberately.
#define MANTI_GC_INTERNAL 1

#include "gc/Handles.h"
#include "gc/HeapInternal.h"
#include "gc/HeapVerifier.h"
#include "numa/Topology.h"

#include <benchmark/benchmark.h>

#include <vector>

using namespace manti;

namespace {

GCConfig benchConfig() {
  GCConfig Cfg;
  Cfg.LocalHeapBytes = 1024 * 1024;
  Cfg.MinNurseryBytes = 64 * 1024;
  Cfg.ChunkBytes = 256 * 1024;
  Cfg.GlobalGCBytesPerVProc = 64 * 1024 * 1024; // avoid surprise globals
  return Cfg;
}

Value makeList(VProcHeap &H, int64_t N) {
  GcFrame Frame(H);
  Value List = Value::nil();
  Frame.root(List);
  for (int64_t I = 0; I < N; ++I) {
    Value Elems[2] = {Value::fromInt(I), List};
    GcFrame Inner(H);
    Inner.root(Elems[0]);
    Inner.root(Elems[1]);
    List = H.allocVector(Elems, 2);
  }
  return List;
}

} // namespace

/// Bump allocation in the nursery ("functional-language implementations
/// are notorious for their high rate of memory allocation").
static void BM_NurseryAlloc(benchmark::State &State) {
  GCWorld World(benchConfig(), Topology::singleNode(1), 1);
  VProcHeap &H = World.heap(0);
  int64_t Words = State.range(0);
  for (auto _ : State) {
    Value V = H.allocRaw(nullptr, Words * 8);
    benchmark::DoNotOptimize(V);
  }
  State.SetBytesProcessed(State.iterations() * (Words + 1) * 8);
}
BENCHMARK(BM_NurseryAlloc)->Arg(2)->Arg(8)->Arg(64);

/// The same bump allocation through the out-of-line twin of the fast
/// path (the pre-inlining code shape, kept for exactly this comparison):
/// the delta against BM_NurseryAlloc is what header-inlining the
/// tryAlloc fast path buys per allocation.
static void BM_NurseryAllocOutlined(benchmark::State &State) {
  GCWorld World(benchConfig(), Topology::singleNode(1), 1);
  VProcHeap &H = World.heap(0);
  int64_t Words = State.range(0);
  for (auto _ : State) {
    Value V = gcinternal::HeapAccess::allocRawOutlined(H, nullptr, Words * 8);
    benchmark::DoNotOptimize(V);
  }
  State.SetBytesProcessed(State.iterations() * (Words + 1) * 8);
}
BENCHMARK(BM_NurseryAllocOutlined)->Arg(2)->Arg(8)->Arg(64);

/// Allocate a fresh live list, then minor-collect it: measures the
/// mutator-allocation plus nursery-copy cycle at a given live size.
static void BM_MinorGC(benchmark::State &State) {
  GCWorld World(benchConfig(), Topology::singleNode(1), 1);
  VProcHeap &H = World.heap(0);
  int64_t LiveCells = State.range(0);
  for (auto _ : State) {
    GcFrame Frame(H);
    Value &Live = Frame.root(makeList(H, LiveCells));
    H.minorGC();
    benchmark::DoNotOptimize(Live);
  }
  State.SetBytesProcessed(State.iterations() * LiveCells * 24);
}
BENCHMARK(BM_MinorGC)->Arg(64)->Arg(256)->Arg(2048);

/// Major collection: evacuating the old area to the global heap.
static void BM_MajorGC(benchmark::State &State) {
  GCWorld World(benchConfig(), Topology::singleNode(1), 1);
  VProcHeap &H = World.heap(0);
  int64_t Cells = State.range(0);
  for (auto _ : State) {
    State.PauseTiming();
    GcFrame Frame(H);
    Value &List = Frame.root(makeList(H, Cells));
    H.minorGC();
    H.minorGC(); // age the data into the old area
    State.ResumeTiming();
    H.majorGC();
    benchmark::DoNotOptimize(List);
  }
  State.SetBytesProcessed(State.iterations() * Cells * 24);
}
BENCHMARK(BM_MajorGC)->Arg(256)->Arg(2048)->Arg(8192);

/// Promotion: the cost of sharing an object graph (the burden the lazy
/// stealing scheme exists to avoid).
static void BM_Promotion(benchmark::State &State) {
  GCWorld World(benchConfig(), Topology::singleNode(1), 1);
  VProcHeap &H = World.heap(0);
  int64_t Cells = State.range(0);
  for (auto _ : State) {
    State.PauseTiming();
    GcFrame Frame(H);
    Value &List = Frame.root(makeList(H, Cells));
    State.ResumeTiming();
    Value P = H.promote(List);
    benchmark::DoNotOptimize(P);
  }
  State.SetBytesProcessed(State.iterations() * Cells * 24);
}
BENCHMARK(BM_Promotion)->Arg(16)->Arg(256)->Arg(4096);

/// Parallel stop-the-world global collection, single vproc (pause floor).
static void BM_GlobalGC(benchmark::State &State) {
  GCConfig Cfg = benchConfig();
  GCWorld World(Cfg, Topology::singleNode(1), 1);
  VProcHeap &H = World.heap(0);
  GcFrame Frame(H);
  Value &Live = Frame.root(makeList(H, State.range(0)));
  Live = H.promote(Live);
  for (auto _ : State) {
    World.requestGlobalGC();
    H.safePoint();
    benchmark::DoNotOptimize(Live);
  }
  State.counters["live_cells"] = static_cast<double>(State.range(0));
}
BENCHMARK(BM_GlobalGC)->Arg(256)->Arg(4096)->Arg(16384);

/// Mostly-concurrent cycle, single vproc: measures the whole-cycle cost
/// (both rendezvous plus assist-driven tracing -- with one vproc nothing
/// actually overlaps). Compare against BM_GlobalGC for the mark-sweep
/// vs copying-collection cost at the same live size; the *pause* win
/// shows up in bench_serving_kv, not here.
static void BM_ConcurrentGlobalGC(benchmark::State &State) {
  GCConfig Cfg = benchConfig();
  Cfg.ConcurrentGlobal = true;
  GCWorld World(Cfg, Topology::singleNode(1), 1);
  VProcHeap &H = World.heap(0);
  GcFrame Frame(H);
  Value &Live = Frame.root(makeList(H, State.range(0)));
  Live = H.promote(Live);
  for (auto _ : State) {
    World.startConcurrentMark();
    while (World.collectionInProgress())
      H.safePoint();
    benchmark::DoNotOptimize(Live);
  }
  State.counters["live_cells"] = static_cast<double>(State.range(0));
}
BENCHMARK(BM_ConcurrentGlobalGC)->Arg(256)->Arg(4096)->Arg(16384);

/// Descriptor-driven scanning: allocate a chain of mixed objects and
/// minor-collect it, exercising the per-type generated scanners
/// (Section 3.2) on every copy.
static void BM_MixedObjectScan(benchmark::State &State) {
  GCWorld World(benchConfig(), Topology::singleNode(1), 1);
  uint16_t Id = World.descriptors().registerMixed("bench-node", 4, {0, 1});
  VProcHeap &H = World.heap(0);
  int64_t Chain = State.range(0);
  for (auto _ : State) {
    GcFrame Frame(H);
    Value &Root = Frame.root(Value::nil());
    for (int64_t I = 0; I < Chain; ++I) {
      Word Fields[4] = {Root.bits(), Root.bits(), 7, 9};
      Value *Slots[2] = {&Root, &Root};
      Root = gcinternal::allocMixedRooted(H, Id, Fields, Slots);
    }
    H.minorGC();
    benchmark::DoNotOptimize(Root);
  }
  State.SetItemsProcessed(State.iterations() * Chain);
}
BENCHMARK(BM_MixedObjectScan)->Arg(512)->Arg(4096);

/// Handle-layer root registration: one RootScope with N rooted slots,
/// opened and torn down per iteration. This is the fixed overhead every
/// handle-using operation pays before touching the heap (the
/// lock-free-structure ops in src/structures/ open one per retry loop).
static void BM_RootScopeRegister(benchmark::State &State) {
  GCWorld World(benchConfig(), Topology::singleNode(1), 1);
  VProcHeap &H = World.heap(0);
  int64_t Roots = State.range(0);
  for (auto _ : State) {
    RootScope Scope(H);
    for (int64_t I = 0; I < Roots; ++I) {
      Ref<> R = Scope.root(Value::fromInt(I));
      benchmark::DoNotOptimize(R);
    }
  }
  State.SetItemsProcessed(State.iterations() * Roots);
}
BENCHMARK(BM_RootScopeRegister)->Arg(1)->Arg(4)->Arg(16);

/// Handle assignment through the SATB deletion barrier: overwriting a
/// rooted slot mid concurrent mark must record the dropped value. The
/// Idle/ConcMark pair prices the barrier's fast path (phase check only)
/// against its taken path (record into the SATB buffer).
static void BM_RefAssign(benchmark::State &State) {
  GCConfig Cfg = benchConfig();
  Cfg.ConcurrentGlobal = true;
  GCWorld World(Cfg, Topology::singleNode(1), 1);
  VProcHeap &H = World.heap(0);
  RootScope Scope(H);
  Ref<> A = Scope.root(makeList(H, 4));
  Ref<> B = Scope.root(makeList(H, 4));
  Ref<> Slot = Scope.root(A.value());
  const bool MidMark = State.range(0) != 0;
  if (MidMark) {
    World.startConcurrentMark();
    H.safePoint(); // join the snapshot rendezvous; marking is now live
  }
  bool Flip = false;
  for (auto _ : State) {
    Slot = Flip ? A.value() : B.value();
    Flip = !Flip;
    benchmark::DoNotOptimize(Slot);
  }
  if (MidMark)
    while (World.collectionInProgress())
      H.safePoint();
  State.SetItemsProcessed(State.iterations());
  State.counters["mid_mark"] = MidMark ? 1 : 0;
}
BENCHMARK(BM_RefAssign)->Arg(0)->Arg(1);

BENCHMARK_MAIN();
