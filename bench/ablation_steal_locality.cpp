//===- bench/ablation_steal_locality.cpp - steal victim-selection ablation -===//
//
// Part of the manticore-gc project.
//
// PR 1 made the *memory* side NUMA-aware (per-node chunk shards); this
// ablation measures the *computation* side. With uniform-random victim
// selection a steal is as likely to drag an environment (and its
// subsequent promotions) across the interconnect as to stay on-node;
// with the Scheduler's proximity tiers a thief probes its own node
// first. The workload hands every vproc its own producer task (queued
// directly on each vproc before the run starts) with unequal leaf
// counts: vprocs that drain early become thieves, and the policy
// decides whether they refill from their node's still-loaded producers
// or from across the interconnect. (On this single-core host wall
// clock is not meaningful; the SchedStats locality counters are the
// observable.)
//
//===----------------------------------------------------------------------===//

#include "GCBenchUtils.h"
#include "gc/GCReport.h"
#include "gc/Handles.h"
#include "numa/TrafficMatrix.h"
#include "runtime/Runtime.h"
#include "runtime/Scheduler.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <thread>

using namespace manti;

namespace {

int LeavesBase = 320;      ///< shortest producer's leaf count (--quick: 96)
constexpr int EnvLen = 24; ///< ints per task environment
int LeafWork = 300;        ///< env traversals per leaf (--quick: 80)

/// Producer I queues LeavesBase * (1|3|5) leaves: the imbalance that
/// keeps short-producer vprocs stealing while their peers still produce.
int leavesFor(unsigned Producer) {
  return LeavesBase * (1 + 2 * (Producer % 3));
}

std::atomic<int64_t> Remaining;

int64_t envSum(Value List) {
  int64_t Sum = 0;
  while (!List.isNil()) {
    Sum += VecRef<>::getInt(List, 0);
    List = VecRef<>::get(List, 1);
  }
  return Sum;
}

void leafTask(Runtime &, VProc &, Task T) {
  // Traverse the (possibly stolen) environment: enough work that loaded
  // queues persist across OS timeslices on a small host.
  int64_t Sum = 0;
  for (int I = 0; I < LeafWork; ++I)
    Sum += envSum(T.Env);
  if (Sum < 0)
    std::abort(); // keep the reads observable
  Remaining.fetch_sub(1, std::memory_order_relaxed);
}

void producerTask(Runtime &, VProc &VP, Task T) {
  // Queue a deep run of leaves. The owner works the LIFO end while
  // thieves take batches from the FIFO end.
  RootScope Scope(VP.heap());
  for (int64_t L = 0; L < T.A; ++L) {
    Ref<> Env = Scope.root(benchutil::makeIntListB(VP.heap(), EnvLen));
    VP.spawn({leafTask, nullptr, Env, 0, 0});
  }
  Remaining.fetch_sub(1, std::memory_order_relaxed);
}

struct RunResult {
  SchedStats Sched;
  double RemoteTrafficFraction = 0;
};

RunResult runTree(const Topology &Topo, unsigned NumVProcs,
                  bool LocalStealFirst, unsigned StealBatch) {
  RuntimeConfig Cfg;
  Cfg.GC.LocalHeapBytes = 256 * 1024;
  Cfg.GC.GlobalGCBytesPerVProc = 1024 * 1024;
  Cfg.NumVProcs = NumVProcs;
  Cfg.PinThreads = false;
  Cfg.LocalStealFirst = LocalStealFirst;
  Cfg.StealBatch = StealBatch;
  // This ablation isolates *victim selection*: the newer rebalance
  // mechanisms are pinned to their baselines so the batch column keeps
  // meaning "per-handshake cap" and no task migrates outside the
  // handshake under test (bench_ablation_rebalance sweeps those knobs).
  Cfg.StealHalf = false;
  Cfg.ShedThreshold = 0;
  Runtime RT(Cfg, Topo);

  int64_t TotalTasks = 0;
  for (unsigned I = 0; I < NumVProcs; ++I)
    TotalTasks += 1 + leavesFor(I);
  Remaining.store(TotalTasks, std::memory_order_relaxed);

  // Place one producer on every vproc up front (the workers are idling
  // between runs, so their queues are quiet): the run starts with every
  // node loaded, and stealing only redistributes the unequal tails.
  for (unsigned I = 0; I < NumVProcs; ++I)
    RT.vproc(I).spawn({producerTask, nullptr, Value::nil(),
                       leavesFor(I), 0});

  RT.run(
      [](Runtime &, VProc &VP, void *) {
        while (Remaining.load(std::memory_order_relaxed) > 0) {
          VP.poll(); // answer thieves between local tasks
          if (VP.runOneLocal())
            continue;
          if (Remaining.load(std::memory_order_relaxed) <= 0)
            break;
          if (!VP.stealAndRun())
            std::this_thread::yield();
        }
      },
      nullptr);

  RunResult R;
  R.Sched = RT.aggregateSchedStats();
  TrafficMatrix &Traffic = RT.world().traffic();
  uint64_t Total = Traffic.totalBytes();
  R.RemoteTrafficFraction =
      Total ? static_cast<double>(Traffic.remoteBytes()) /
                  static_cast<double>(Total)
            : 0;
  return R;
}

void printRow(benchutil::JsonReport &Json, const char *Machine,
              const char *Policy, unsigned Batch, const RunResult &R) {
  const SchedStats &S = R.Sched;
  Json.addRow(Machine,
              std::string(Policy) + "/batch" + std::to_string(Batch),
              {{"tasks_stolen", static_cast<double>(S.TasksStolen)},
               {"steal_batches", static_cast<double>(S.StealBatches)},
               {"mean_batch", S.meanStealBatch()},
               {"node_local_pct", 100.0 * S.nodeLocalFraction()},
               {"failed_rounds", static_cast<double>(S.FailedStealRounds)},
               {"parks", static_cast<double>(S.Parks)},
               {"park_ms", static_cast<double>(S.ParkNanos) / 1e6},
               {"remote_traffic_pct", 100.0 * R.RemoteTrafficFraction}});
  std::printf(
      "%-10s %-14s %5u  %7llu %7llu %9.2f %11.1f%% %8llu %7llu %9.1f %9.1f%%\n",
      Machine, Policy, Batch,
      static_cast<unsigned long long>(S.TasksStolen),
      static_cast<unsigned long long>(S.StealBatches), S.meanStealBatch(),
      100.0 * S.nodeLocalFraction(),
      static_cast<unsigned long long>(S.FailedStealRounds),
      static_cast<unsigned long long>(S.Parks),
      static_cast<double>(S.ParkNanos) / 1e6,
      100.0 * R.RemoteTrafficFraction);
}

} // namespace

int main(int argc, char **argv) {
  benchutil::BenchOptions Opts = benchutil::BenchOptions::parse(
      argc, argv, "ablation_steal_locality",
      "Work-stealing victim-selection ablation: proximity tiers vs "
      "uniform-random.");
  const bool Quick = Opts.Quick;
  if (Quick) {
    // CI smoke sizing: same sweep, counts small enough for a shared
    // container; the locality counters stay meaningful.
    LeavesBase = 96;
    LeafWork = 80;
  }
  benchutil::JsonReport Json("ablation_steal_locality", Opts.JsonPath);
  std::printf("Ablation: work-stealing victim selection "
              "(proximity tiers vs uniform-random)%s\n",
              Quick ? " [--quick]" : "");
  std::printf("Workload: one producer per vproc (%d/%d/%d-leaf mix), "
              "%d-int environments; lazy promotion\n\n",
              leavesFor(0), leavesFor(1), leavesFor(2), EnvLen);
  std::printf("%-10s %-14s %5s  %7s %7s %9s %12s %8s %7s %9s %10s\n",
              "machine", "victim policy", "batch", "stolen", "batches",
              "avg/batch", "node-local", "failed", "parks", "park ms",
              "remote traffic");

  Topology Amd = Topology::amdMagnyCours48();
  Topology Intel = Topology::intelXeon32();

  // Warm-up (discarded): first-run thread creation and page-fault noise
  // otherwise lands in the first measured row.
  (void)runTree(Amd, 24, true, 4);

  // The headline comparison of the two policies, plus a batch sweep on
  // the AMD machine (24 vprocs = 3 per node; 16 on Intel = 4 per node).
  if (Opts.runsTopology("amd48"))
    for (bool Local : {true, false})
      printRow(Json, "amd48", Local ? "proximity" : "uniform", 4,
               runTree(Amd, 24, Local, 4));
  if (Opts.runsTopology("intel32"))
    for (bool Local : {true, false})
      printRow(Json, "intel32", Local ? "proximity" : "uniform", 4,
               runTree(Intel, 16, Local, 4));
  if (Opts.runsTopology("amd48"))
    for (unsigned Batch : {1u, 8u})
      printRow(Json, "amd48", "proximity", Batch,
               runTree(Amd, 24, true, Batch));

  std::printf(
      "\nWith proximity tiers (and the remote-steal throttle), a thief\n"
      "probes its own node's vprocs every round but unlocks farther tiers\n"
      "only after going empty-handed for a while, so vprocs that drain\n"
      "early refill from their node's producers and stolen environments\n"
      "(and their later promotions) stay off the interconnect.\n"
      "Uniform-random selection is load- and topology-blind (expect\n"
      "~1/num-nodes node-local): most steals ship their environment\n"
      "across a link, which the traffic ledger's (victim node -> thief\n"
      "node) entries record.\n");
  return Json.write() ? 0 : 1;
}
