//===- bench/ablation_chunk_affinity.cpp - chunk node-affinity ablation ---===//
//
// Part of the manticore-gc project.
//
// The paper: "our memory system tracks the node on which a chunk is
// allocated and preserves node affinity when reusing chunks." This
// ablation runs identical promotion/collection churn with affinity
// preserved vs ignored and reports how often a vproc received a chunk
// homed on its own node, plus the resulting share of remote GC traffic
// in the ledger. (On this single-core host the wall-clock difference is
// not meaningful; the locality counters are the observable.)
//
//===----------------------------------------------------------------------===//

#include "GCBenchUtils.h"
#include "numa/Topology.h"

#include <cstdio>
#include <vector>

using namespace manti;
using namespace manti::benchutil;

namespace {

int Rounds = 500; // --quick shrinks the churn, counters stay meaningful

struct AblationResult {
  uint64_t NodeLocalReuses = 0;
  uint64_t CrossNodeSteals = 0;
  uint64_t FreshMappings = 0;
  double RemoteTrafficFraction = 0;
  uint64_t GlobalGCs = 0;
};

AblationResult runChurn(bool PreserveAffinity) {
  GCConfig Cfg;
  Cfg.LocalHeapBytes = 256 * 1024;
  Cfg.MinNurseryBytes = 32 * 1024;
  Cfg.ChunkBytes = 64 * 1024;
  Cfg.GlobalGCBytesPerVProc = 256 * 1024;
  Cfg.PreserveChunkAffinity = PreserveAffinity;
  GCWorld World(Cfg, Topology::uniform(4, 1), 4);

  // Each vproc promotes live and dead lists on its own thread; the
  // trigger fires global collections that recycle chunks.
  runOnWorldThreads(World, [](VProcHeap &H) {
    RootScope Scope(H);
    Ref<> Keep = Scope.root(Value::nil());
    for (int Round = 0; Round < Rounds; ++Round) {
      {
        RootScope Inner(H);
        Ref<> Junk = Inner.root(makeIntListB(H, 300));
        promote(Inner, Junk);
      }
      Keep = H.promote(makeIntListB(H, 40));
      H.safePoint();
    }
  });

  AblationResult R;
  // The manager's machine-wide counters and the per-vproc GCStats tallies
  // are two views of the same events; report the former, sanity-check
  // against the latter.
  R.NodeLocalReuses = World.chunks().nodeLocalReuses();
  R.CrossNodeSteals = World.chunks().crossNodeSteals();
  R.FreshMappings = World.chunks().freshRegistrations();
  GCStats S = World.aggregateStats();
  if (S.ChunkLocalReuses != R.NodeLocalReuses ||
      S.ChunkCrossNodeSteals != R.CrossNodeSteals)
    std::fprintf(stderr,
                 "warning: per-vproc chunk tallies disagree with the "
                 "manager (%llu/%llu local, %llu/%llu steals)\n",
                 static_cast<unsigned long long>(S.ChunkLocalReuses),
                 static_cast<unsigned long long>(R.NodeLocalReuses),
                 static_cast<unsigned long long>(S.ChunkCrossNodeSteals),
                 static_cast<unsigned long long>(R.CrossNodeSteals));
  R.GlobalGCs = World.globalGCCount();
  uint64_t Total = World.traffic().totalBytes();
  R.RemoteTrafficFraction =
      Total ? static_cast<double>(World.traffic().remoteBytes()) / Total : 0;
  return R;
}

} // namespace

int main(int argc, char **argv) {
  BenchOptions Opts = BenchOptions::parse(
      argc, argv, "ablation_chunk_affinity",
      "Global-heap chunk reuse with and without node affinity "
      "(locality counters are the observable).");
  if (Opts.Quick)
    Rounds = 120;
  JsonReport Json("ablation_chunk_affinity", Opts.JsonPath);
  std::printf("Ablation: global-heap chunk reuse with and without node "
              "affinity%s\n",
              Opts.Quick ? " [--quick]" : "");
  std::printf("(4 vprocs on a 4-node machine, local allocation policy; "
              "identical churn)\n\n");
  std::printf("%-22s %-18s %-18s %-16s %-16s %-10s\n", "configuration",
              "node-local reuses", "cross-node steals", "fresh mappings",
              "remote traffic", "global GCs");
  for (bool Affinity : {true, false}) {
    AblationResult R = runChurn(Affinity);
    Json.addRow("uniform", Affinity ? "affinity-preserved" : "affinity-ignored",
                {{"node_local_reuses", static_cast<double>(R.NodeLocalReuses)},
                 {"cross_node_steals", static_cast<double>(R.CrossNodeSteals)},
                 {"fresh_mappings", static_cast<double>(R.FreshMappings)},
                 {"remote_traffic_pct", 100.0 * R.RemoteTrafficFraction},
                 {"global_gcs", static_cast<double>(R.GlobalGCs)}});
    char Remote[16];
    std::snprintf(Remote, sizeof(Remote), "%.1f%%",
                  R.RemoteTrafficFraction * 100.0);
    std::printf("%-22s %-18llu %-18llu %-16llu %-16s %-10llu\n",
                Affinity ? "affinity preserved" : "affinity ignored",
                static_cast<unsigned long long>(R.NodeLocalReuses),
                static_cast<unsigned long long>(R.CrossNodeSteals),
                static_cast<unsigned long long>(R.FreshMappings),
                Remote, static_cast<unsigned long long>(R.GlobalGCs));
  }
  std::printf("\nWith affinity preserved, chunk requests are served from "
              "the requesting\nnode's free list (node-local "
              "synchronization, node-local copying); with\naffinity "
              "ignored, vprocs routinely receive remote-homed chunks and "
              "every\nsubsequent major collection copies across the "
              "interconnect.\n");
  return Json.write() ? 0 : 1;
}
