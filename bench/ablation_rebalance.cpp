//===- bench/ablation_rebalance.cpp - adaptive load-balancing ablation ----===//
//
// Part of the manticore-gc project.
//
// Sweeps the three PR-5 load-balancing mechanisms, each against its
// baseline, fully crossed:
//
//   rebalance -- shed     victim-initiated shedding on
//                          (RuntimeConfig::ShedThreshold > 0)
//                no-shed  push side off (ShedThreshold = 0): a skewed
//                          producer rebalances only at remote-steal
//                          patience
//   batch     -- half     steal-half (one handshake drains ceil(k/2) of
//                          a deep queue in mailbox chunks)
//                fixed    the fixed per-handshake StealBatch cap
//   patience  -- adapt    per-thief patience scaled by steal success
//                fixed    the fixed RemoteStealPatience threshold
//
// on two workloads over both recorded topologies:
//
//   skewed -- one producer vproc bursts deep queues of leaf tasks while
//             every other node idles between bursts. Without shedding,
//             remote vprocs wait out k * patience empty rounds (parking
//             through the ladder the whole time) before the proximity
//             tiers let them help; shedding hands them a promoted batch
//             the moment the producer's queue crosses the threshold.
//             park-ms is the headline: shed must sit below no-shed.
//
//   phased -- a phase-imbalanced parallelFor: iterations are hinted at
//             nodes block-by-block, and each phase makes exactly one
//             node's block heavy. The heavy node's queues run deep while
//             everyone else drains and parks -- the adversarial case for
//             thief-only balancing, and the natural one for steal-half
//             (deep queue, one victim).
//
// --quick runs the CI smoke sizing; --json <path> writes the table as
// machine-readable rows (the bench-smoke job uploads it as
// BENCH_ablation_rebalance.json).
//
//===----------------------------------------------------------------------===//

#include "GCBenchUtils.h"
#include "gc/Handles.h"
#include "runtime/Parallel.h"
#include "runtime/Runtime.h"
#include "runtime/Scheduler.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

using namespace manti;

namespace {

int Bursts = 24;          ///< skewed: bursts per run (--quick: 8)
int TasksPerBurst = 96;   ///< skewed: leaf tasks per burst
int LeafWork = 60;        ///< env traversals per leaf task
int PerBlock = 48;        ///< phased: iterations per node block (--quick: 24)
int Phases = 3;           ///< phased: heavy-block rotations
constexpr int EnvLen = 8; ///< ints per skewed leaf environment
constexpr int HeavyFactor = 24; ///< phased: heavy / light work ratio

struct Combo {
  bool Shed;
  bool Half;
  bool Adapt;
};

RuntimeConfig comboConfig(unsigned NumVProcs, Combo C) {
  RuntimeConfig Cfg;
  Cfg.GC.LocalHeapBytes = 256 * 1024;
  Cfg.GC.GlobalGCBytesPerVProc = 2 * 1024 * 1024;
  Cfg.NumVProcs = NumVProcs;
  Cfg.PinThreads = false;
  Cfg.ShedThreshold = C.Shed ? 24 : 0;
  Cfg.StealHalf = C.Half;
  Cfg.AdaptivePatience = C.Adapt;
  return Cfg;
}

struct RunResult {
  double Seconds = 0;
  SchedStats Sched;
};

int64_t envSum(Value List) {
  int64_t Sum = 0;
  while (!List.isNil()) {
    Sum += VecRef<>::getInt(List, 0);
    List = VecRef<>::get(List, 1);
  }
  return Sum;
}

//===----------------------------------------------------------------------===//
// Workload 1: skewed producer
//===----------------------------------------------------------------------===//

struct SkewCtx {
  int Bursts;
  int TasksPerBurst;
};

void skewedLeaf(Runtime &, VProc &, Task T) {
  int64_t Sum = 0;
  for (int I = 0; I < LeafWork; ++I)
    Sum += envSum(T.Env);
  if (Sum < 0)
    std::abort(); // keep the traversals observable
  static_cast<JoinCounter *>(T.Ctx)->sub();
}

RunResult runSkewed(const Topology &Topo, unsigned NumVProcs, Combo C) {
  Runtime RT(comboConfig(NumVProcs, C), Topo);
  static SkewCtx Ctx;
  Ctx = {Bursts, TasksPerBurst};
  static double Seconds;

  RT.run(
      [](Runtime &, VProc &VP, void *) {
        double Sum = 0;
        static JoinCounter Join;
        for (int B = 0; B < Ctx.Bursts; ++B) {
          // Idle gap (untimed): the rest of the fleet drains its ladder
          // and parks, so every burst measures rebalance against a
          // genuinely parked machine. The gap's own parks land in both
          // policies alike; the during-burst delta is the signal.
          std::this_thread::sleep_for(std::chrono::microseconds(400));
          auto Start = std::chrono::steady_clock::now();
          RootScope Scope(VP.heap());
          for (int I = 0; I < Ctx.TasksPerBurst; ++I) {
            Ref<> Env =
                Scope.root(benchutil::makeIntListB(VP.heap(), EnvLen));
            Join.add();
            VP.spawn({skewedLeaf, &Join, Env, 0, 0});
          }
          VP.joinWait(Join);
          Sum += std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - Start)
                     .count();
        }
        Seconds = Sum;
      },
      nullptr);

  RunResult R;
  R.Seconds = Seconds;
  R.Sched = RT.aggregateSchedStats();
  return R;
}

//===----------------------------------------------------------------------===//
// Workload 2: phase-imbalanced parallelFor
//===----------------------------------------------------------------------===//

struct PhasedCtx {
  int Phase;
  int PerBlock;
  unsigned Nodes;
};

/// Busy-work proportional to \p Units (about 0.4 us each on a laptop
/// core; the ratio, not the absolute, is what shapes the imbalance).
void spinUnits(int Units) {
  volatile int64_t Acc = 0;
  for (int64_t I = 0; I < static_cast<int64_t>(Units) * 220; ++I)
    Acc = Acc + I;
  (void)Acc;
}

void phasedBody(Runtime &, VProc &, int64_t Lo, int64_t Hi, void *CtxP) {
  auto *Ctx = static_cast<PhasedCtx *>(CtxP);
  for (int64_t I = Lo; I < Hi; ++I) {
    unsigned Block =
        static_cast<unsigned>(I / Ctx->PerBlock) % Ctx->Nodes;
    spinUnits(Block == static_cast<unsigned>(Ctx->Phase) ? HeavyFactor
                                                         : 1);
  }
}

NodeId phasedAffinity(int64_t Lo, int64_t, void *CtxP) {
  auto *Ctx = static_cast<PhasedCtx *>(CtxP);
  return static_cast<NodeId>(
      static_cast<unsigned>(Lo / Ctx->PerBlock) % Ctx->Nodes);
}

RunResult runPhased(const Topology &Topo, unsigned NumVProcs, Combo C) {
  Runtime RT(comboConfig(NumVProcs, C), Topo);
  static PhasedCtx Ctx;
  Ctx = {0, PerBlock, Topo.numNodes()};
  static double Seconds;

  RT.run(
      [](Runtime &RT2, VProc &VP, void *) {
        auto Start = std::chrono::steady_clock::now();
        int64_t Range =
            static_cast<int64_t>(Ctx.Nodes) * Ctx.PerBlock;
        for (int P = 0; P < Phases; ++P) {
          Ctx.Phase = P % static_cast<int>(Ctx.Nodes);
          parallelFor(RT2, VP, 0, Range, 4, phasedBody, &Ctx,
                      phasedAffinity);
        }
        Seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - Start)
                      .count();
      },
      nullptr);

  RunResult R;
  R.Seconds = Seconds;
  R.Sched = RT.aggregateSchedStats();
  return R;
}

//===----------------------------------------------------------------------===//
// Driver
//===----------------------------------------------------------------------===//

void printRow(benchutil::JsonReport &Json, const char *Machine,
              const char *Workload, Combo C, int Ops, const RunResult &R) {
  const SchedStats &S = R.Sched;
  const char *Rebalance = C.Shed ? "shed" : "no-shed";
  const char *Batch = C.Half ? "half" : "fixed";
  const char *Patience = C.Adapt ? "adapt" : "fixed";
  Json.addRow(Machine,
              std::string(Workload) + "/" + Rebalance + "+" + Batch +
                  "+" + Patience,
              {{"ops", static_cast<double>(Ops)},
               {"seconds", R.Seconds},
               {"us_per_op", 1e6 * R.Seconds / Ops},
               {"park_ms", static_cast<double>(S.ParkNanos) / 1e6},
               {"tasks_shed", static_cast<double>(S.TasksShed)},
               {"shed_claimed", static_cast<double>(S.ShedTasksClaimed)},
               {"tasks_stolen", static_cast<double>(S.TasksStolen)},
               {"mean_batch", S.meanStealBatch()},
               {"chunks_per_handshake", S.meanStealChunks()},
               {"failed_rounds", static_cast<double>(S.FailedStealRounds)},
               {"patience_drops", static_cast<double>(S.PatienceDrops)},
               {"patience_raises", static_cast<double>(S.PatienceRaises)}});
  std::printf("%-8s %-7s %-8s %-6s %-6s %8d %8.3f %8.1f %6llu %6llu "
              "%7llu %6.2f %5.2f %7llu\n",
              Machine, Workload, Rebalance, Batch, Patience, Ops,
              R.Seconds, static_cast<double>(S.ParkNanos) / 1e6,
              static_cast<unsigned long long>(S.TasksShed),
              static_cast<unsigned long long>(S.ShedTasksClaimed),
              static_cast<unsigned long long>(S.TasksStolen),
              S.meanStealBatch(), S.meanStealChunks(),
              static_cast<unsigned long long>(S.FailedStealRounds));
}

} // namespace

int main(int argc, char **argv) {
  benchutil::BenchOptions Opts = benchutil::BenchOptions::parse(
      argc, argv, "ablation_rebalance",
      "Adaptive load-balancing ablation: victim-initiated shedding x "
      "steal-half x adaptive patience.");
  const bool Quick = Opts.Quick;
  if (Quick) {
    Bursts = 8;
    TasksPerBurst = 96;
    LeafWork = 40;
    PerBlock = 24;
    Phases = 2;
  }
  benchutil::JsonReport Json("ablation_rebalance", Opts.JsonPath);

  std::printf("Ablation: adaptive load balancing (victim-initiated "
              "shedding x steal-half x adaptive patience)%s\n",
              Quick ? " [--quick]" : "");
  std::printf("skewed: producer bursts against parked remote nodes "
              "(park-ms: shed must undercut no-shed);\n"
              "phased: phase-imbalanced parallelFor, one heavy "
              "node-block per phase\n\n");
  std::printf("%-8s %-7s %-8s %-6s %-6s %8s %8s %8s %6s %6s %7s %6s "
              "%5s %7s\n",
              "machine", "work", "rebal", "batch", "patnce", "ops",
              "seconds", "park-ms", "shed", "claim", "stolen", "avg/b",
              "chk/h", "failed");

  struct MachineDef {
    const char *Name;
    Topology Topo;
    unsigned VProcs;
  };
  // One vproc per node on the AMD machine: CI containers are heavily
  // oversubscribed, and bystander idle threads add park time
  // proportional to wall clock on both sides of every comparison --
  // pure noise. One per node keeps all eight distance tiers in play.
  const MachineDef Machines[2] = {
      {"amd48", Topology::amdMagnyCours48(), 8},
      {"intel32", Topology::intelXeon32(), 8},
  };
  const Combo Combos[8] = {
      {true, true, true},   {true, true, false},  {true, false, true},
      {true, false, false}, {false, true, true},  {false, true, false},
      {false, false, true}, {false, false, false},
  };

  // Warm-up (discarded): thread creation and first-touch noise.
  (void)runSkewed(Machines[0].Topo, Machines[0].VProcs,
                  {true, true, true});

  // Median-of-3 per configuration (by park time, the headline): on a
  // shared host the OS scheduler adds large per-run jitter, and the
  // minimum would select runs where the fleet never parked at all.
  const int Reps = 3;
  auto MedianOf = [&](auto Run) {
    RunResult Rs[3];
    for (int R = 0; R < Reps; ++R)
      Rs[R] = Run();
    std::sort(Rs, Rs + Reps, [](const RunResult &A, const RunResult &B) {
      return A.Sched.ParkNanos < B.Sched.ParkNanos;
    });
    return Rs[Reps / 2];
  };

  double ShedParkMs[2] = {0, 0}, NoShedParkMs[2] = {0, 0};
  for (int M = 0; M < 2; ++M) {
    const MachineDef &Mach = Machines[M];
    if (!Opts.runsTopology(Mach.Name))
      continue;
    for (const Combo &C : Combos) {
      RunResult R =
          MedianOf([&] { return runSkewed(Mach.Topo, Mach.VProcs, C); });
      printRow(Json, Mach.Name, "skewed", C, Bursts * TasksPerBurst, R);
      // Headline: park time summed over the four combos on each side of
      // the shed knob (12 medianed runs apiece), so one jittery
      // configuration cannot flip the comparison.
      (C.Shed ? ShedParkMs : NoShedParkMs)[M] +=
          static_cast<double>(R.Sched.ParkNanos) / 1e6;
    }
    for (const Combo &C : Combos) {
      int Ops = static_cast<int>(Mach.Topo.numNodes()) * PerBlock * Phases;
      printRow(Json, Mach.Name, "phased", C, Ops, MedianOf([&] {
                 return runPhased(Mach.Topo, Mach.VProcs, C);
               }));
    }
  }

  std::printf("\nHeadline (skewed, summed over the batch x patience "
              "sweep): park time with shedding vs the\nShedThreshold=0 "
              "baseline\n");
  for (int M = 0; M < 2; ++M)
    std::printf("  %-8s shed %8.1f ms   no-shed %8.1f ms   (%s)\n",
                Machines[M].Name, ShedParkMs[M], NoShedParkMs[M],
                ShedParkMs[M] < NoShedParkMs[M]
                    ? "shedding reduced idle time"
                    : "no reduction on this host");

  std::printf(
      "\nWithout shedding a burst on one node reaches the others only\n"
      "after k * patience empty-handed rounds per proximity tier, every\n"
      "one of them spent deeper in the park ladder; the shed path hands\n"
      "a promoted batch to the most-starved parked node at spawn time\n"
      "and rings exactly one of its sleepers. Steal-half shows up in the\n"
      "chk/h column (chunks per handshake > 1 = one handshake drained a\n"
      "deep queue); adaptive patience in the failed-rounds column (dry\n"
      "neighborhoods unlock remote tiers sooner).\n");
  return Json.write() ? 0 : 1;
}
