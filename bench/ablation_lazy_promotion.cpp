//===- bench/ablation_lazy_promotion.cpp - steal promotion ablation -------===//
//
// Part of the manticore-gc project.
//
// Section 3.1: "The cost of promotion can be a significant burden, so we
// have developed a number of techniques for reducing the amount of
// promoted data. These include a lazy promotion scheme for work
// stealing [Rai10]..." This ablation spawns the same task load with
// heap environments under both schemes and reports how many bytes were
// promoted: eager pays on every spawn, lazy only for the tasks that
// actually migrate.
//
//===----------------------------------------------------------------------===//

#include "GCBenchUtils.h"
#include "runtime/Runtime.h"

#include <atomic>
#include <cstdio>
#include <thread>

using namespace manti;
using namespace manti::benchutil;

namespace {

struct Load {
  uint64_t PromoteCalls = 0;
  uint64_t PromoteBytes = 0;
  uint64_t Spawns = 0;
  uint64_t Steals = 0;
  double Seconds = 0;
};

std::atomic<int> Remaining;
int TaskCount = 400; // --quick shrinks the spawn volume

void taskBody(Runtime &, VProc &VP, Task T) {
  // Touch the environment so the promotion is not dead weight.
  RootScope S(VP.heap());
  VecRef<> Cur = S.rootVector(T.Env);
  int64_t Sum = 0;
  for (; !Cur.isNil(); Cur = Cur.at(1))
    Sum += Cur.intAt(0);
  benchmarkSink(Sum);
  Remaining.fetch_sub(1);
}

Load runLoad(bool Lazy, bool ForceSteals) {
  RuntimeConfig Cfg;
  Cfg.GC.LocalHeapBytes = 512 * 1024;
  Cfg.GC.GlobalGCBytesPerVProc = 64 * 1024 * 1024;
  Cfg.NumVProcs = 4;
  Cfg.PinThreads = false;
  Cfg.LazyPromotion = Lazy;
  Runtime RT(Cfg, Topology::uniform(2, 2));

  static bool StaticForceSteals;
  StaticForceSteals = ForceSteals;
  Remaining = TaskCount;

  auto Start = std::chrono::steady_clock::now();
  RT.run(
      [](Runtime &, VProc &VP, void *) {
        RootScope Scope(VP.heap());
        for (int I = 0; I < TaskCount; ++I) {
          Ref<> Env = Scope.root(makeIntListB(VP.heap(), 50));
          VP.spawn({taskBody, nullptr, Env, 0, 0});
          // In the force-steal configuration the spawner never runs its
          // own tasks, so all 400 migrate; otherwise it helps, and most
          // tasks run where they were created.
          if (!StaticForceSteals)
            VP.runOneLocal();
        }
        while (Remaining.load() > 0) {
          VP.poll();
          if (!StaticForceSteals && VP.runOneLocal())
            continue;
          std::this_thread::yield();
        }
      },
      nullptr);
  auto End = std::chrono::steady_clock::now();

  Load L;
  L.Seconds = std::chrono::duration<double>(End - Start).count();
  for (unsigned V = 0; V < RT.numVProcs(); ++V) {
    L.PromoteCalls += RT.world().heap(V).Stats.PromoteCalls;
    L.PromoteBytes += RT.world().heap(V).Stats.PromoteBytes;
    L.Spawns += RT.vproc(V).spawns();
    L.Steals += RT.vproc(V).stealsServiced();
  }
  return L;
}

} // namespace

int main(int argc, char **argv) {
  BenchOptions Opts = BenchOptions::parse(
      argc, argv, "ablation_lazy_promotion",
      "Lazy vs eager promotion of stolen-task environments: eager pays "
      "per spawn, lazy per migration.");
  if (Opts.Quick)
    TaskCount = 150;
  JsonReport Json("ablation_lazy_promotion", Opts.JsonPath);
  std::printf("Ablation: lazy vs eager promotion of stolen-task "
              "environments%s\n",
              Opts.Quick ? " [--quick]" : "");
  std::printf("(%d tasks, each closing over a 50-cell list; 4 vprocs)\n\n",
              TaskCount);
  std::printf("%-32s %-9s %-9s %-10s %-14s\n", "configuration", "spawns",
              "steals", "promotions", "promoted bytes");
  struct Config {
    const char *Name;
    bool Lazy, ForceSteals;
  } Configs[] = {
      {"lazy, spawner helps", true, false},
      {"eager, spawner helps", false, false},
      {"lazy, all tasks stolen", true, true},
      {"eager, all tasks stolen", false, true},
  };
  for (const Config &C : Configs) {
    Load L = runLoad(C.Lazy, C.ForceSteals);
    Json.addRow("uniform", C.Name,
                {{"spawns", static_cast<double>(L.Spawns)},
                 {"steals", static_cast<double>(L.Steals)},
                 {"promotions", static_cast<double>(L.PromoteCalls)},
                 {"promoted_bytes", static_cast<double>(L.PromoteBytes)},
                 {"seconds", L.Seconds}});
    std::printf("%-32s %-9llu %-9llu %-10llu %-14llu\n", C.Name,
                static_cast<unsigned long long>(L.Spawns),
                static_cast<unsigned long long>(L.Steals),
                static_cast<unsigned long long>(L.PromoteCalls),
                static_cast<unsigned long long>(L.PromoteBytes));
  }
  std::printf("\nLazy promotion's cost tracks the number of *steals*; "
              "eager promotion's\ntracks the number of *spawns*. When the "
              "spawner helps (the common case,\nwhere most tasks never "
              "migrate), lazy promotion moves a fraction of the\nbytes "
              "eager promotion moves -- the paper's motivation for the "
              "scheme.\n");
  return Json.write() ? 0 : 1;
}
