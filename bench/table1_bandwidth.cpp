//===- bench/table1_bandwidth.cpp - reproduce paper Table 1 ---------------===//
//
// Part of the manticore-gc project.
// "Theoretical bandwidth available between a single node and the rest of
// the system." The model's topologies encode exactly these numbers; the
// binary prints paper vs model so drift is obvious, plus a "host
// measured" column -- a STREAM triad on the running machine
// (StreamKernels.h) -- so the simulator's cost model can be calibrated
// against real silicon rather than data-sheet figures.
//
//===----------------------------------------------------------------------===//

#include "GCBenchUtils.h"
#include "StreamKernels.h"

#include "numa/NumaOS.h"
#include "numa/Topology.h"

#include <algorithm>
#include <cstdio>
#include <string>

using namespace manti;
using namespace manti::streambench;

int main(int argc, char **argv) {
  benchutil::BenchOptions Opts = benchutil::BenchOptions::parse(
      argc, argv, "table1_bandwidth",
      "Paper Table 1 (theoretical node bandwidth) vs the model's encoding, "
      "plus STREAM-measured numbers for the host machine.");
  benchutil::JsonReport Json("table1_bandwidth", Opts.JsonPath);

  Topology Amd = Topology::amdMagnyCours48();
  Topology Intel = Topology::intelXeon32();

  // Host measurement: triad local to node 0, and remote from node 0 to
  // the most distant node (the worst pair, like the paper's "another
  // package" row). UMA machines get only the local figure.
  Topology Host = Topology::host();
  TriadConfig HC;
  HC.ElemsPerArray = Opts.Quick ? (1u << 20) : (1u << 23);
  HC.Reps = Opts.Quick ? 3 : 10;
  HC.ComputeCpus = nodeCpus(Host, 0, Opts.Quick ? 2u : 8u);
  HC.BindOsNode = static_cast<int>(Host.osNodeOfNode(0));
  double HostLocal = runTriad(HC).GBps;
  double HostRemote = 0;
  if (Host.numNodes() > 1) {
    NodeId Far = 1;
    for (NodeId N = 1; N < Host.numNodes(); ++N)
      if (Host.distance(0, N) > Host.distance(0, Far))
        Far = N;
    TriadConfig RC = HC;
    RC.FillCpus = nodeCpus(Host, Far, Opts.Quick ? 2u : 8u);
    RC.BindOsNode = static_cast<int>(Host.osNodeOfNode(Far));
    HostRemote = runTriad(RC).GBps;
  }
  char HostLocalStr[32], HostRemoteStr[32];
  std::snprintf(HostLocalStr, sizeof(HostLocalStr), "%.1f", HostLocal);
  if (HostRemote > 0)
    std::snprintf(HostRemoteStr, sizeof(HostRemoteStr), "%.1f", HostRemote);
  else
    std::snprintf(HostRemoteStr, sizeof(HostRemoteStr), "n/a (UMA)");

  std::printf("Table 1: theoretical bandwidth between a single node and "
              "the rest of the system (GB/s)\n");
  std::printf("host measured column: STREAM triad on \"%s\" (%u node(s), "
              "best of %u reps)\n\n",
              Host.name().c_str(), Host.numNodes(), HC.Reps);
  std::printf("%-28s %-12s %-12s %-12s %-12s %-14s\n", "", "AMD paper",
              "AMD model", "Intel paper", "Intel model", "Host measured");

  // Local memory: the node's own controller.
  std::printf("%-28s %-12.1f %-12.1f %-12.1f %-12.1f %-14s\n", "Local Memory",
              21.3, Amd.pathGBps(0, 0), 17.1, Intel.pathGBps(0, 0),
              HostLocalStr);

  // Node in same package: AMD pairs dies per package; Intel has one node
  // per package (n/a in the paper), and the host probe has no package
  // info. A route's bandwidth is its *narrowest* link: the old scan
  // overwrote the value with every hop, so a multi-hop route would have
  // silently reported only its last hop.
  double AmdSamePkg = 0;
  for (NodeId B = 0; B < Amd.numNodes(); ++B) {
    if (B == 0 || !Amd.samePackage(0, B))
      continue;
    double RouteBw = 1e9;
    for (LinkId L : Amd.route(0, B))
      RouteBw = std::min(RouteBw, Amd.link(L).GBps);
    AmdSamePkg = std::max(AmdSamePkg, RouteBw);
  }
  std::printf("%-28s %-12.1f %-12.1f %-12s %-12s %-14s\n",
              "Node in same package", 19.2, AmdSamePkg, "n/a", "n/a", "n/a");

  // Node on another package: the single 8-bit HT3 link (AMD), a full QPI
  // link (Intel). Print the raw link capacity like the paper does.
  double AmdRemote = 1e9, IntelRemote = 0;
  for (NodeId B = 0; B < Amd.numNodes(); ++B) {
    if (Amd.samePackage(0, B) || Amd.hopCount(0, B) != 1)
      continue;
    for (LinkId L : Amd.route(0, B))
      AmdRemote = std::min(AmdRemote, Amd.link(L).GBps);
  }
  for (LinkId L : Intel.route(0, 1))
    IntelRemote = Intel.link(L).GBps;
  std::printf("%-28s %-12.1f %-12.1f %-12.1f %-12.1f %-14s\n",
              "Node on another package", 6.4, AmdRemote, 25.6, IntelRemote,
              HostRemoteStr);

  std::printf("\nDerived end-to-end path bandwidths (min of controller and "
              "links):\n");
  std::printf("  AMD   node0 -> node1 (same package):   %5.1f GB/s\n",
              Amd.pathGBps(1, 0));
  std::printf("  AMD   node0 -> node7 (other package):  %5.1f GB/s\n",
              Amd.pathGBps(7, 0));
  std::printf("  Intel node0 -> node3 (QPI, controller-bound): %5.1f GB/s\n",
              Intel.pathGBps(3, 0));
  std::printf("\nHop counts: AMD max %u (via package mate), Intel max 1 "
              "(full QPI mesh).\n",
              [&] {
                unsigned Max = 0;
                for (NodeId A = 0; A < Amd.numNodes(); ++A)
                  for (NodeId B = 0; B < Amd.numNodes(); ++B)
                    Max = std::max(Max, Amd.hopCount(A, B));
                return Max;
              }());
  if (HostRemote > 0 && HostLocal > 0)
    std::printf("\nHost remote/local ratio: %.2f (paper: AMD %.2f, "
                "Intel %.2f)\n",
                HostRemote / HostLocal, 6.4 / 21.3, 25.6 / 17.1);

  Json.addRow("amd48", "model",
              {{"local_gbps", Amd.pathGBps(0, 0)},
               {"same_pkg_gbps", AmdSamePkg},
               {"remote_gbps", AmdRemote}});
  Json.addRow("intel32", "model",
              {{"local_gbps", Intel.pathGBps(0, 0)},
               {"remote_gbps", IntelRemote}});
  Json.addRow("host", "measured",
              {{"local_gbps", HostLocal},
               {"remote_gbps", HostRemote},
               {"nodes", static_cast<double>(Host.numNodes())}});
  return Json.write() ? 0 : 1;
}
