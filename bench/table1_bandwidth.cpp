//===- bench/table1_bandwidth.cpp - reproduce paper Table 1 ---------------===//
//
// Part of the manticore-gc project.
// "Theoretical bandwidth available between a single node and the rest of
// the system." The model's topologies encode exactly these numbers; the
// binary prints paper vs model so drift is obvious.
//
//===----------------------------------------------------------------------===//

#include "numa/Topology.h"

#include <cstdio>

using namespace manti;

int main() {
  Topology Amd = Topology::amdMagnyCours48();
  Topology Intel = Topology::intelXeon32();

  std::printf("Table 1: theoretical bandwidth between a single node and "
              "the rest of the system (GB/s)\n\n");
  std::printf("%-28s %-12s %-12s %-12s %-12s\n", "", "AMD paper", "AMD model",
              "Intel paper", "Intel model");

  // Local memory: the node's own controller.
  std::printf("%-28s %-12.1f %-12.1f %-12.1f %-12.1f\n", "Local Memory",
              21.3, Amd.pathGBps(0, 0), 17.1, Intel.pathGBps(0, 0));

  // Node in same package: AMD pairs dies per package; Intel has one node
  // per package (n/a in the paper).
  double AmdSamePkg = 0;
  for (NodeId B = 0; B < Amd.numNodes(); ++B)
    if (B != 0 && Amd.samePackage(0, B))
      for (LinkId L : Amd.route(0, B))
        AmdSamePkg = Amd.link(L).GBps;
  std::printf("%-28s %-12.1f %-12.1f %-12s %-12s\n", "Node in same package",
              19.2, AmdSamePkg, "n/a", "n/a");

  // Node on another package: the single 8-bit HT3 link (AMD), a full QPI
  // link (Intel). Print the raw link capacity like the paper does.
  double AmdRemote = 1e9, IntelRemote = 0;
  for (NodeId B = 0; B < Amd.numNodes(); ++B) {
    if (Amd.samePackage(0, B) || Amd.hopCount(0, B) != 1)
      continue;
    for (LinkId L : Amd.route(0, B))
      AmdRemote = std::min(AmdRemote, Amd.link(L).GBps);
  }
  for (LinkId L : Intel.route(0, 1))
    IntelRemote = Intel.link(L).GBps;
  std::printf("%-28s %-12.1f %-12.1f %-12.1f %-12.1f\n",
              "Node on another package", 6.4, AmdRemote, 25.6, IntelRemote);

  std::printf("\nDerived end-to-end path bandwidths (min of controller and "
              "links):\n");
  std::printf("  AMD   node0 -> node1 (same package):   %5.1f GB/s\n",
              Amd.pathGBps(1, 0));
  std::printf("  AMD   node0 -> node7 (other package):  %5.1f GB/s\n",
              Amd.pathGBps(7, 0));
  std::printf("  Intel node0 -> node3 (QPI, controller-bound): %5.1f GB/s\n",
              Intel.pathGBps(3, 0));
  std::printf("\nHop counts: AMD max %u (via package mate), Intel max 1 "
              "(full QPI mesh).\n",
              [&] {
                unsigned Max = 0;
                for (NodeId A = 0; A < Amd.numNodes(); ++A)
                  for (NodeId B = 0; B < Amd.numNodes(); ++B)
                    Max = std::max(Max, Amd.hopCount(A, B));
                return Max;
              }());
  return 0;
}
