//===- bench/ablation_parking.cpp - doorbell vs ladder parking ablation ---===//
//
// Part of the manticore-gc project.
//
// Sweeps the two parking policies on the two recorded topologies:
//
//   doorbell  -- every blocking site parks in the ParkLot and is rung
//                awake (RuntimeConfig::UseDoorbells = true, the default)
//   ladder    -- the pre-ParkLot baseline: blind bounded sleeps nobody
//                can cut short (UseDoorbells = false)
//
// Two workloads stress the two blocking families:
//
//   ping-pong -- a blocked-receiver round trip: the main vproc and an
//                echo task exchange one message per round over two
//                channels, so every leg is a parked receiver waiting on
//                a hand-off. Under the ladder each leg eats a blind
//                park interval; under doorbells the sender's ring ends
//                the park immediately. us/round-trip is the headline.
//
//   skewed    -- one producer vproc spawns bursts of leaf tasks while
//                every other vproc idles between bursts. The ladder
//                wakes workers only when a blind park expires; the
//                doorbell rings them on the first spawn of each burst.
//
// Pass --quick for the CI smoke run (same table, smaller counts; the CI
// step asserts both policy columns are present).
//
//===----------------------------------------------------------------------===//

#include "GCBenchUtils.h"
#include "gc/Handles.h"
#include "runtime/Channel.h"
#include "runtime/Parallel.h"
#include "runtime/Runtime.h"
#include "runtime/Scheduler.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

using namespace manti;

namespace {

struct RunResult {
  double Seconds = 0;
  double MicrosPerOp = 0;
  SchedStats Sched;
};

RuntimeConfig parkingConfig(unsigned NumVProcs, bool Doorbells) {
  RuntimeConfig Cfg;
  Cfg.GC.LocalHeapBytes = 256 * 1024;
  Cfg.GC.GlobalGCBytesPerVProc = 2 * 1024 * 1024;
  Cfg.NumVProcs = NumVProcs;
  Cfg.PinThreads = false;
  Cfg.UseDoorbells = Doorbells;
  return Cfg;
}

//===----------------------------------------------------------------------===//
// Workload 1: blocked-receiver ping-pong
//===----------------------------------------------------------------------===//

struct PingPongCtx {
  Channel *Ping;
  Channel *Pong;
  int Rounds;
};

/// Busy-spins for \p Micros (simulated per-request work).
void spinWork(unsigned Micros) {
  auto Until =
      std::chrono::steady_clock::now() + std::chrono::microseconds(Micros);
  volatile int64_t Acc = 0;
  while (std::chrono::steady_clock::now() < Until)
    Acc = Acc + 1;
}

/// Think time between receiving a request and answering it, so the
/// requester genuinely blocks: it descends past blockOn's spin rounds
/// and the early ladder rungs into full-depth parks. (Without think
/// time a same-speed partner is always caught in the spin phase and
/// neither policy ever parks.) 300 us lands mid-way through the
/// ladder's 256 us rung (the blind cumulative parks wake at
/// 8+16+32+64+128+256 = 504 us), so the ladder overshoots the hand-off
/// by up to ~200 us while the doorbell ring ends the park in
/// microseconds. Spun, not slept, so the hand-off instant is
/// deterministic to a few microseconds; the run counts stay small
/// because sustained spinning runs shared CI containers into their CPU
/// quota, whose throttling stalls drown the policy difference.
constexpr unsigned ThinkMicros = 300;

void echoTask(Runtime &, VProc &VP, Task T) {
  auto *Ctx = static_cast<PingPongCtx *>(T.Ctx);
  for (int I = 0; I < Ctx->Rounds; ++I) {
    Value V = Ctx->Ping->recv(VP);
    spinWork(ThinkMicros);
    Ctx->Pong->send(VP, V);
  }
}

RunResult runPingPong(const Topology &Topo, unsigned NumVProcs,
                      bool Doorbells, int Rounds) {
  Runtime RT(parkingConfig(NumVProcs, Doorbells), Topo);
  Channel Ping(RT), Pong(RT);
  static PingPongCtx Ctx;
  Ctx = {&Ping, &Pong, Rounds};
  static double Seconds;

  RT.run(
      [](Runtime &, VProc &VP, void *) {
        // The echo side runs wherever a worker steals it; the main
        // vproc then blocks in recv on every round trip.
        VP.spawn({echoTask, &Ctx, Value::nil(), 0, 0});
        auto Start = std::chrono::steady_clock::now();
        for (int I = 0; I < Ctx.Rounds; ++I) {
          Ctx.Ping->send(VP, Value::fromInt(I));
          Value V = Ctx.Pong->recv(VP);
          if (V.asInt() != I)
            std::abort();
        }
        Seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - Start)
                      .count();
      },
      nullptr);

  RunResult R;
  R.Seconds = Seconds;
  R.MicrosPerOp = 1e6 * Seconds / Rounds;
  R.Sched = RT.aggregateSchedStats();
  return R;
}

//===----------------------------------------------------------------------===//
// Workload 2: skewed producer (bursts against idle workers)
//===----------------------------------------------------------------------===//

void leafTask(Runtime &, VProc &, Task) {
  // Enough work (~20 us) that waking workers is worth it and a burst
  // does not collapse into the spawner.
  spinWork(20);
}

struct SkewCtx {
  int Bursts;
  int TasksPerBurst;
};

RunResult runSkewedProducer(const Topology &Topo, unsigned NumVProcs,
                            bool Doorbells, int Bursts, int TasksPerBurst) {
  Runtime RT(parkingConfig(NumVProcs, Doorbells), Topo);
  static SkewCtx Ctx;
  Ctx = {Bursts, TasksPerBurst};
  static double Seconds;

  RT.run(
      [](Runtime &, VProc &VP, void *) {
        double Sum = 0;
        for (int B = 0; B < Ctx.Bursts; ++B) {
          // Idle gap (untimed): workers descend their ladders and park,
          // so each burst measures pickup from a parked fleet.
          std::this_thread::sleep_for(std::chrono::microseconds(800));
          auto Start = std::chrono::steady_clock::now();
          static JoinCounter Join;
          for (int I = 0; I < Ctx.TasksPerBurst; ++I) {
            Join.add();
            VP.spawn({[](Runtime &RT2, VProc &VP2, Task T) {
                        leafTask(RT2, VP2, T);
                        static_cast<JoinCounter *>(T.Ctx)->sub();
                      },
                      &Join, Value::nil(), B * 1000 + I, 0});
          }
          VP.joinWait(Join);
          Sum += std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - Start)
                     .count();
        }
        Seconds = Sum;
      },
      nullptr);

  RunResult R;
  R.Seconds = Seconds;
  R.MicrosPerOp = 1e6 * Seconds / (Bursts * TasksPerBurst);
  R.Sched = RT.aggregateSchedStats();
  return R;
}

void printRow(benchutil::JsonReport &Json, const char *Machine,
              const char *Policy, const char *Workload, int Ops,
              const RunResult &R) {
  const SchedStats &S = R.Sched;
  Json.addRow(Machine, std::string(Policy) + "/" + Workload,
              {{"ops", static_cast<double>(Ops)},
               {"seconds", R.Seconds},
               {"us_per_op", R.MicrosPerOp},
               {"parks", static_cast<double>(S.Parks)},
               {"ring_wakeups", static_cast<double>(S.RingWakeups)},
               {"wake_us", S.meanRingWakeupMicros()},
               {"rings_sent", static_cast<double>(S.RingsSent)},
               {"rings_wasted", static_cast<double>(S.RingsWasted)}});
  std::printf("%-10s %-10s %-10s %8d %9.3f %9.2f %8llu %9llu %9.1f %8llu "
              "%8llu\n",
              Machine, Policy, Workload, Ops, R.Seconds, R.MicrosPerOp,
              static_cast<unsigned long long>(S.Parks),
              static_cast<unsigned long long>(S.RingWakeups),
              S.meanRingWakeupMicros(),
              static_cast<unsigned long long>(S.RingsSent),
              static_cast<unsigned long long>(S.RingsWasted));
}

} // namespace

int main(int argc, char **argv) {
  benchutil::BenchOptions Opts = benchutil::BenchOptions::parse(
      argc, argv, "ablation_parking",
      "Parking policy ablation: ParkLot doorbells vs the blind "
      "bounded-sleep ladder.");
  const bool Quick = Opts.Quick;
  benchutil::JsonReport Json("ablation_parking", Opts.JsonPath);

  // Modest default counts: the ping-pong spins think-time continuously,
  // and on a CPU-quota-limited container a long sustained run gets
  // throttled, which flattens the policy comparison into noise. Raise
  // the counts on dedicated hardware.
  const int Rounds = Quick ? 200 : 400;
  const int Bursts = Quick ? 10 : 30;
  const int TasksPerBurst = Quick ? 32 : 64;

  std::printf("Ablation: parking policy (ParkLot doorbells vs blind "
              "bounded-sleep ladder)%s\n",
              Quick ? " [--quick]" : "");
  std::printf("ping-pong: blocked-receiver round trips (us/op = "
              "us/round-trip); skewed: producer bursts\n"
              "against parked workers (us/op = us/task)\n\n");
  std::printf("%-10s %-10s %-10s %8s %9s %9s %8s %9s %9s %8s %8s\n",
              "machine", "policy", "workload", "ops", "seconds", "us/op",
              "parks", "ring-wake", "wake-us", "rings", "wasted");

  struct MachineDef {
    const char *Name;
    Topology Topo;
    unsigned PingVProcs;
    unsigned SkewVProcs;
  };
  // Ping-pong uses two vprocs (requester node 0, echo node 1 -- the
  // sparse assignment spreads them), so the round-trip latency is not
  // polluted by idle third parties; the skewed producer runs a fleet.
  const MachineDef Machines[2] = {
      {"amd48", Topology::amdMagnyCours48(), 2, 16},
      {"intel32", Topology::intelXeon32(), 2, 8},
  };

  // Warm-up (discarded): thread creation and first-touch noise.
  (void)runPingPong(Machines[0].Topo, 2, true, Quick ? 50 : 200);

  // Median-of-N per configuration: on a shared host the OS scheduler
  // adds large per-run jitter. The median keeps a representative run
  // (the minimum would select the lucky runs where the partner was
  // always caught in the spin phase and the parking machinery under
  // test never engaged).
  const int Reps = 3;
  auto BestOf = [&](auto Run) {
    std::vector<RunResult> Rs;
    for (int R = 0; R < Reps; ++R)
      Rs.push_back(Run());
    std::sort(Rs.begin(), Rs.end(),
              [](const RunResult &A, const RunResult &B) {
                return A.Seconds < B.Seconds;
              });
    return Rs[Rs.size() / 2];
  };

  for (const MachineDef &M : Machines) {
    if (!Opts.runsTopology(M.Name))
      continue;
    for (bool Doorbells : {true, false}) {
      const char *Policy = Doorbells ? "doorbell" : "ladder";
      printRow(Json, M.Name, Policy, "ping-pong", Rounds, BestOf([&] {
                 return runPingPong(M.Topo, M.PingVProcs, Doorbells,
                                    Rounds);
               }));
      printRow(Json, M.Name, Policy, "skewed", Bursts * TasksPerBurst,
               BestOf([&] {
                 return runSkewedProducer(M.Topo, M.SkewVProcs, Doorbells,
                                          Bursts, TasksPerBurst);
               }));
    }
  }

  std::printf(
      "\nUnder the ladder a blocked receiver sleeps out blind 8..256 us\n"
      "parks, so every ping-pong round trip overshoots the sender's\n"
      "hand-off by an average half-park; with the ParkLot the hand-off\n"
      "rings the receiver's node doorbell and the futex wait ends in\n"
      "microseconds (the wake-us column is the measured ring-to-wake\n"
      "latency). The skewed rows exercise the spawn-ring path (rings\n"
      "sent / wasted, wake-one per ring); note that on an oversubscribed\n"
      "host the spawner can drain small bursts alone, so waking workers\n"
      "there mostly measures ring accounting, not pickup speedup --\n"
      "dedicated cores are where burst pickup gains show.\n");
  return Json.write() ? 0 : 1;
}
