//===- bench/serving_kv.cpp - KV serving tail-latency benchmark -----------===//
//
// Part of the manticore-gc project.
//
// The serving-workload headline bench: a NUMA-sharded KV store driven by
// an open-loop Poisson arrival schedule (service/TrafficGen.h), swept
// over offered load x value size x GC configuration on both recorded
// topologies. Each row reports achieved throughput, the latency tail
// (p50/p99/p999/max, measured from *scheduled* arrival -- no coordinated
// omission), and the collector's worst single pause for the run.
//
// The point of the sweep: mean latency barely moves with GC pressure,
// but p99/p999 track the max pause almost directly once offered load
// approaches saturation -- queueing behind a pause is charged to every
// request scheduled during it. The "tight" GC config (small nursery,
// low global-GC trigger) collects often; "roomy" gives the collector
// headroom. Compare the max-pause and p99 columns between them.
//
// Offered load is expressed as a fraction of measured capacity: a
// calibration run per (machine, config, value-size) cell schedules its
// whole request set at t=0 -- a pure closed-loop drain through the same
// workers and channels -- and its achieved throughput is the capacity
// baseline. Load factor L then offers L * capacity requests/second
// (split across the generators). Loads > 1.0 are deliberately past
// saturation -- the tail there is queueing delay.
//
// Usage: bench_serving_kv [--quick] [--json <path>] [--topology <name>]
//
//===----------------------------------------------------------------------===//

#include "GCBenchUtils.h"
#include "gc/GCReport.h"
#include "runtime/Runtime.h"
#include "service/TrafficGen.h"

#include <cstdio>
#include <vector>

using namespace manti;

namespace {

struct GCConfigDef {
  const char *Name;
  std::size_t LocalHeapBytes;
  std::size_t GlobalGCBytesPerVProc;
  bool Concurrent;
};

const GCConfigDef GCConfigs[4] = {
    // Collect often: small nursery, global trigger low enough that the
    // preloaded store alone crosses it -- global collections happen even
    // in the --quick sweep. The -conc twin runs the same budget with
    // mostly-concurrent marking: the STW/concurrent ablation pair.
    {"tight", 256 * 1024, 128 * 1024, false},
    {"tight-conc", 256 * 1024, 128 * 1024, true},
    // Collector headroom: default nursery, high global trigger.
    {"roomy", 512 * 1024, 8 * 1024 * 1024, false},
    {"roomy-conc", 512 * 1024, 8 * 1024 * 1024, true},
};

RuntimeConfig makeConfig(const GCConfigDef &GC, unsigned NumVProcs) {
  RuntimeConfig Cfg;
  Cfg.GC.LocalHeapBytes = GC.LocalHeapBytes;
  Cfg.GC.GlobalGCBytesPerVProc = GC.GlobalGCBytesPerVProc;
  Cfg.GC.ConcurrentGlobal = GC.Concurrent;
  Cfg.NumVProcs = NumVProcs;
  Cfg.PinThreads = false;
  return Cfg;
}

//===----------------------------------------------------------------------===//
// Calibration: saturation throughput of the full serving pipeline
//===----------------------------------------------------------------------===//

/// Capacity baseline for one (machine, config, value-size) cell: a
/// serving run whose whole schedule lands at t=0, so the generators
/// never pace and the achieved rate is the pipeline's closed-loop drain
/// throughput -- workers, channels, store, and GC included. Raw store
/// ops would be the wrong baseline: a get is a hash probe, but a served
/// request is a channel round trip.
double calibrateCapacityRps(const Topology &Topo, const GCConfigDef &GC,
                            unsigned Workers, TrafficConfig Traffic,
                            uint64_t Requests) {
  Traffic.RequestsPerGen = Requests;
  Traffic.RatePerGen = 1e12; // inter-arrival gaps ~0: everything due at t=0
  Runtime RT(makeConfig(GC, 2 * Workers), Topo);
  ServingConfig Cfg;
  Cfg.Traffic = Traffic;
  Cfg.Workers = Workers;
  Cfg.PreloadKeys = Traffic.KeySpace;
  ServingResult R = runServing(RT, Cfg);
  return R.AchievedRps > 0 ? R.AchievedRps : 1e6;
}

//===----------------------------------------------------------------------===//
// One measured row
//===----------------------------------------------------------------------===//

void runRow(benchutil::JsonReport &Json, const char *Machine,
            const Topology &Topo, unsigned Workers, const GCConfigDef &GC,
            double LoadFactor, double CapacityRps, TrafficConfig Traffic) {
  Traffic.RatePerGen = LoadFactor * CapacityRps / Workers;

  Runtime RT(makeConfig(GC, 2 * Workers), Topo);
  ServingConfig Cfg;
  Cfg.Traffic = Traffic;
  Cfg.Workers = Workers;
  Cfg.PreloadKeys = Traffic.KeySpace;
  ServingResult R = runServing(RT, Cfg);

  Report Rep = buildGCReport(RT.world());
  const double MaxPauseUs = Rep.value("pause.max_us");
  const double GlobalGCs = static_cast<double>(RT.world().globalGCCount());
  const LatencyRecorder &L = R.Latency;
  const double P50 = L.percentileNanos(50) / 1e3;
  const double P99 = L.percentileNanos(99) / 1e3;
  const double P999 = L.percentileNanos(99.9) / 1e3;
  const double Max = L.maxNanos() / 1e3;

  char Config[64];
  std::snprintf(Config, sizeof(Config), "%s/val%u/load%.2f", GC.Name,
                Traffic.ValueBytes, LoadFactor);
  Json.addRow(Machine, Config,
              {{"workers", static_cast<double>(Workers)},
               {"value_bytes", static_cast<double>(Traffic.ValueBytes)},
               {"load_factor", LoadFactor},
               {"offered_rps", R.OfferedRps},
               {"achieved_rps", R.AchievedRps},
               {"p50_us", P50},
               {"p99_us", P99},
               {"p999_us", P999},
               {"max_us", Max},
               {"max_pause_us", MaxPauseUs},
               {"global_gcs", GlobalGCs},
               {"misses", static_cast<double>(R.Misses)},
               {"corruptions", static_cast<double>(R.Corruptions)},
               {"sizeclass_hits", Rep.value("alloc.sizeclass.hits")},
               {"sizeclass_misses", Rep.value("alloc.sizeclass.misses")},
               {"sizeclass_flushes", Rep.value("alloc.sizeclass.flushes")}});
  std::printf("%-8s %-10s %5u %5.2f %9.0f %9.0f %8.0f %8.0f %8.0f %8.0f "
              "%9.1f %4.0f %7llu %7llu\n",
              Machine, GC.Name, Traffic.ValueBytes, LoadFactor, R.OfferedRps,
              R.AchievedRps, P50, P99, P999, Max, MaxPauseUs, GlobalGCs,
              static_cast<unsigned long long>(R.Misses),
              static_cast<unsigned long long>(R.Corruptions));
  std::fflush(stdout);
}

} // namespace

int main(int argc, char **argv) {
  benchutil::BenchOptions Opts = benchutil::BenchOptions::parse(
      argc, argv, "serving_kv",
      "NUMA-sharded KV serving: open-loop tail latency vs offered load, "
      "value size, and GC configuration.");
  benchutil::JsonReport Json("serving_kv", Opts.JsonPath);

  const bool Quick = Opts.Quick;
  const std::vector<double> Loads =
      Quick ? std::vector<double>{0.3, 1.25}
            : std::vector<double>{0.25, 0.6, 1.0, 1.5};
  const std::vector<uint32_t> ValueSizes =
      Quick ? std::vector<uint32_t>{256} : std::vector<uint32_t>{64, 1024};
  const uint64_t RequestsPerGen = Quick ? 500 : 3000;
  const uint64_t CalibRequestsPerGen = Quick ? 300 : 1500;

  std::printf("KV serving: open-loop tail latency "
              "(latency from scheduled arrival; us)%s\n\n",
              Quick ? " [--quick]" : "");
  std::printf("%-8s %-10s %5s %5s %9s %9s %8s %8s %8s %8s %9s %4s %7s %7s\n",
              "machine", "gc-cfg", "val", "load", "offered", "achieved",
              "p50", "p99", "p999", "max", "max-pause", "gcs", "miss",
              "corrupt");

  struct MachineDef {
    const char *Name;
    Topology Topo;
    unsigned Workers; ///< = shards = generators; vprocs = 2x
  };
  const MachineDef Machines[2] = {
      {"amd48", Topology::amdMagnyCours48(), 8},
      {"intel32", Topology::intelXeon32(), 4},
  };

  for (const MachineDef &M : Machines) {
    if (!Opts.runsTopology(M.Name))
      continue;
    for (const GCConfigDef &GC : GCConfigs) {
      for (uint32_t ValBytes : ValueSizes) {
        TrafficConfig Traffic;
        Traffic.Seed = 42;
        Traffic.RequestsPerGen = RequestsPerGen;
        Traffic.KeySpace = 1 << 13;
        Traffic.ValueBytes = ValBytes;
        const double CapacityRps = calibrateCapacityRps(
            M.Topo, GC, M.Workers, Traffic, CalibRequestsPerGen);
        for (double Load : Loads)
          runRow(Json, M.Name, M.Topo, M.Workers, GC, Load, CapacityRps,
                 Traffic);
      }
    }
    std::printf("\n");
  }

  std::printf(
      "p50 tracks per-op service time, but p99/p999 climb toward the\n"
      "max-pause column as load approaches saturation: an open-loop\n"
      "schedule keeps arriving during a collection, and every request\n"
      "scheduled inside the pause inherits its remainder as queueing\n"
      "delay. The tight GC config trades throughput headroom for more\n"
      "frequent, smaller collections -- compare its max-pause and p99\n"
      "against roomy at the same load. The -conc twins run the same\n"
      "budgets with mostly-concurrent global marking: tracing overlaps\n"
      "mutation and only the two short rendezvous count as pause, so\n"
      "their max-pause column should sit well below the STW rows'.\n");
  return Json.write() ? 0 : 1;
}
