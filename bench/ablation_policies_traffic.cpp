//===- bench/ablation_policies_traffic.cpp - policy traffic ablation ------===//
//
// Part of the manticore-gc project.
//
// Runs identical allocation/promotion churn on the *real* collector
// under the three page-allocation policies of Section 4.3 and reports
// the inter-node traffic ledger: where local-heap pages and global
// chunks ended up, and what share of GC copying crossed nodes. This is
// the mechanism behind Figures 5-7, observed directly rather than
// through the timing model.
//
//===----------------------------------------------------------------------===//

#include "GCBenchUtils.h"
#include "numa/Topology.h"

#include <cstdio>
#include <vector>

using namespace manti;
using namespace manti::benchutil;

namespace {

int Rounds = 60; // --quick shrinks the churn

struct PolicyStats {
  double RemoteFraction = 0;
  uint64_t Node0InBytes = 0;
  uint64_t TotalBytes = 0;
  std::vector<uint64_t> PerNodeIn;
};

PolicyStats runChurn(AllocPolicyKind Policy) {
  GCConfig Cfg;
  Cfg.LocalHeapBytes = 256 * 1024;
  Cfg.MinNurseryBytes = 32 * 1024;
  Cfg.ChunkBytes = 64 * 1024;
  Cfg.GlobalGCBytesPerVProc = 1024 * 1024;
  Cfg.Policy = Policy;
  GCWorld World(Cfg, Topology::uniform(4, 1), 4);

  runOnWorldThreads(World, [](VProcHeap &H) {
    RootScope Scope(H);
    Ref<> Keep = Scope.root(Value::nil());
    for (int Round = 0; Round < Rounds; ++Round) {
      {
        RootScope Inner(H);
        Ref<> Junk = Inner.root(makeIntListB(H, 400));
        promote(Inner, Junk);
      }
      Keep = H.promote(makeIntListB(H, 30));
      H.majorGC();
      H.safePoint();
    }
  });

  PolicyStats S;
  S.TotalBytes = World.traffic().totalBytes();
  S.RemoteFraction =
      S.TotalBytes ? static_cast<double>(World.traffic().remoteBytes()) /
                         static_cast<double>(S.TotalBytes)
                   : 0;
  S.PerNodeIn.resize(4);
  for (NodeId N = 0; N < 4; ++N)
    S.PerNodeIn[N] = World.traffic().bytesInto(N);
  S.Node0InBytes = S.PerNodeIn[0];
  return S;
}

} // namespace

int main(int argc, char **argv) {
  BenchOptions Opts = BenchOptions::parse(
      argc, argv, "ablation_policies_traffic",
      "GC memory traffic under the three page-allocation policies "
      "(Section 4.3), observed on the real collector.");
  if (Opts.Quick)
    Rounds = 20;
  JsonReport Json("ablation_policies_traffic", Opts.JsonPath);
  std::printf("Ablation: GC memory traffic under the three page-allocation "
              "policies%s\n",
              Opts.Quick ? " [--quick]" : "");
  std::printf("(real collector, 4 vprocs on 4 nodes, identical churn; "
              "Section 4.3)\n\n");
  std::printf("%-14s %-16s %-14s %-40s\n", "policy", "remote traffic",
              "node0 share", "bytes into node 0..3");
  for (AllocPolicyKind Policy :
       {AllocPolicyKind::Local, AllocPolicyKind::Interleaved,
        AllocPolicyKind::SingleNode}) {
    PolicyStats S = runChurn(Policy);
    Json.addRow("uniform", allocPolicyName(Policy),
                {{"remote_traffic_pct", 100.0 * S.RemoteFraction},
                 {"total_bytes", static_cast<double>(S.TotalBytes)},
                 {"into_node0_bytes", static_cast<double>(S.PerNodeIn[0])},
                 {"into_node1_bytes", static_cast<double>(S.PerNodeIn[1])},
                 {"into_node2_bytes", static_cast<double>(S.PerNodeIn[2])},
                 {"into_node3_bytes", static_cast<double>(S.PerNodeIn[3])}});
    double Node0Share =
        S.TotalBytes ? 100.0 * static_cast<double>(S.Node0InBytes) /
                           static_cast<double>(S.TotalBytes)
                     : 0;
    std::printf("%-14s %-15.1f%% %-13.1f%% ", allocPolicyName(Policy),
                S.RemoteFraction * 100.0, Node0Share);
    for (uint64_t B : S.PerNodeIn)
      std::printf("%-10llu ", static_cast<unsigned long long>(B));
    std::printf("\n");
  }
  std::printf("\nLocal keeps GC copying on each vproc's own node; "
              "interleaved spreads it\n(but most of it becomes remote); "
              "single-node funnels every byte through\nnode 0 -- the "
              "saturation behind Figure 7.\n");
  return Json.write() ? 0 : 1;
}
