//===- bench/fig4_intel_speedup.cpp - reproduce paper Figure 4 ------------===//
//
// Part of the manticore-gc project.
// "Comparative speedup plots for five benchmarks on Intel hardware."
//
//===----------------------------------------------------------------------===//

#include "FigureMain.h"

using namespace manti;
using namespace manti::sim;

int main(int argc, char **argv) {
  return runFigure(
      argc, argv, "fig4_intel_speedup",
      "Figure 4: speedups on the 32-core Intel Xeon X7560 machine",
      "(local page allocation; baseline = 1-thread local run)",
      SimMachine::intel32(), AllocPolicyKind::Local, AllocPolicyKind::Local,
      intelThreadAxis());
}
