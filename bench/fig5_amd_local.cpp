//===- bench/fig5_amd_local.cpp - reproduce paper Figure 5 ----------------===//
//
// Part of the manticore-gc project.
// "Comparative speedup plots for five benchmarks on AMD hardware using
// local memory allocation."
//
//===----------------------------------------------------------------------===//

#include "FigureMain.h"

using namespace manti;
using namespace manti::sim;

int main(int argc, char **argv) {
  return runFigure(
      argc, argv, "fig5_amd_local",
      "Figure 5: speedups on the 48-core AMD Opteron 6172 machine",
      "(local page allocation -- Manticore's default; baseline = 1-thread "
      "local run)",
      SimMachine::amd48(), AllocPolicyKind::Local, AllocPolicyKind::Local,
      amdThreadAxis());
}
