//===- bench/numa_stream.cpp - STREAM calibration of the host machine -----===//
//
// Part of the manticore-gc project.
//
// Bergstrom's recipe ("Measuring NUMA effects with the STREAM
// benchmark") applied to the machine this binary runs on: a triad sweep
// over every (thread node, memory node) pair plus an interleaved row per
// thread node, reporting measured GB/s. The local/remote/interleaved
// split is the hardware's answer to the paper's Table 1, and the numbers
// calibrate the simulator's link-bandwidth cost model.
//
// On a single-node (UMA) machine -- every CI runner -- the sweep
// degrades to the local and interleaved rows and says so explicitly;
// that degradation path is exactly what the host-numa CI lane smokes.
//
//===----------------------------------------------------------------------===//

#include "GCBenchUtils.h"
#include "StreamKernels.h"

#include "numa/NumaOS.h"
#include "numa/Topology.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace manti;
using namespace manti::streambench;

int main(int argc, char **argv) {
  benchutil::BenchOptions Opts = benchutil::BenchOptions::parse(
      argc, argv, "numa_stream",
      "STREAM triad sweep over the host's NUMA topology: local / remote / "
      "interleaved placement x thread node, measured GB/s per node pair.");
  benchutil::JsonReport Json("numa_stream", Opts.JsonPath);

  Topology Host = Topology::host();
  if (!Opts.runsTopology("host")) {
    std::printf("numa_stream only runs on the \"host\" topology\n");
    return Json.write() ? 0 : 1;
  }

  const unsigned Nodes = Host.numNodes();
  TriadConfig Base;
  Base.ElemsPerArray = Opts.Quick ? (1u << 20) : (1u << 23); // 8 / 64 MiB
  Base.Reps = Opts.Quick ? 3 : 10;
  const unsigned MaxThreads = Opts.Quick ? 2 : 8;

  std::printf("numa_stream: host \"%s\" -- %u node(s) x %u core(s), "
              "libnuma binding %s\n",
              Host.name().c_str(), Nodes, Host.coresPerNode(),
              numaos::available() ? "available" : "unavailable (first-touch "
                                                 "placement only)");
  std::printf("triad arrays: 3 x %.1f MiB, %u reps (best reported), "
              "<= %u threads\n\n",
              Base.ElemsPerArray * sizeof(double) / (1024.0 * 1024.0),
              Base.Reps, MaxThreads);

  std::printf("%-12s %-10s %-13s %-9s %-10s %-7s %s\n", "thread-node",
              "mem-node", "kind", "threads", "GB/s", "bound", "distance");

  double LocalBest = 0, RemoteWorst = 0, RemoteBest = 0;
  auto Emit = [&](NodeId T, const char *MemName, const char *Kind,
                  unsigned Threads, const TriadResult &R, unsigned Distance) {
    std::printf("%-12u %-10s %-13s %-9u %-10.2f %-7s %u\n", T, MemName, Kind,
                Threads, R.GBps, R.Bound ? "yes" : "no", Distance);
    Json.addRow("host",
                "t" + std::to_string(T) + "-m" + MemName + "-" + Kind,
                {{"gbps", R.GBps},
                 {"threads", static_cast<double>(Threads)},
                 {"mib_per_array",
                  Base.ElemsPerArray * sizeof(double) / (1024.0 * 1024.0)},
                 {"bound", R.Bound ? 1.0 : 0.0},
                 {"distance", static_cast<double>(Distance)}});
  };

  for (NodeId T = 0; T < Nodes; ++T) {
    std::vector<unsigned> ComputeCpus = nodeCpus(Host, T, MaxThreads);
    for (NodeId M = 0; M < Nodes; ++M) {
      TriadConfig C = Base;
      C.ComputeCpus = ComputeCpus;
      // Place on M two ways at once: first touch from M's cpus, plus a
      // deterministic mbind when the build can.
      if (M != T)
        C.FillCpus = nodeCpus(Host, M, MaxThreads);
      C.BindOsNode = static_cast<int>(Host.osNodeOfNode(M));
      TriadResult R = runTriad(C);
      const char *Kind = M == T ? "local" : "remote";
      Emit(T, std::to_string(M).c_str(), Kind,
           static_cast<unsigned>(ComputeCpus.size()), R,
           Host.distance(T, M));
      if (M == T)
        LocalBest = std::max(LocalBest, R.GBps);
      else {
        RemoteWorst = RemoteWorst == 0 ? R.GBps : std::min(RemoteWorst, R.GBps);
        RemoteBest = std::max(RemoteBest, R.GBps);
      }
    }
    // Interleaved: pages spread across every node.
    TriadConfig C = Base;
    C.ComputeCpus = ComputeCpus;
    C.Interleave = true;
    TriadResult R = runTriad(C);
    Emit(T, "all", "interleaved", static_cast<unsigned>(ComputeCpus.size()),
         R, Host.distance(T, T));
  }

  std::printf("\ncalibration summary:\n");
  std::printf("  local  best: %.2f GB/s\n", LocalBest);
  if (Nodes > 1) {
    std::printf("  remote best: %.2f GB/s, worst: %.2f GB/s "
                "(remote/local ratio %.2f)\n",
                RemoteBest, RemoteWorst,
                LocalBest > 0 ? RemoteWorst / LocalBest : 0.0);
    std::printf("  model placeholder had local %.1f GB/s; update the host "
                "topology's nominal figures from these rows.\n",
                Topology::HostNominalLocalGBps);
  } else {
    std::printf("  remote: n/a (single NUMA node -- the UMA "
                "graceful-degradation path)\n");
  }

  return Json.write() ? 0 : 1;
}
