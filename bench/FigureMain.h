//===- bench/FigureMain.h - shared driver for the speedup figures ---------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Each of the paper's speedup figures (4-7) is one binary that prints
/// the same series the figure plots: speedup per benchmark per thread
/// count, relative to the baseline the paper uses. This header holds the
/// shared driver, including the machine-readable `--json <path>` mode
/// (one row per benchmark x thread count, same schema as the ablation
/// benches: bench / topology / config / metrics).
///
//===----------------------------------------------------------------------===//

#ifndef MANTI_BENCH_FIGUREMAIN_H
#define MANTI_BENCH_FIGUREMAIN_H

#include "GCBenchUtils.h"
#include "sim/Speedup.h"

#include <cstdio>

namespace manti::sim {

inline int runFigure(const char *Name, const char *JsonPath,
                     const char *Title, const char *Caption,
                     const SimMachine &M, AllocPolicyKind Policy,
                     AllocPolicyKind BaselinePolicy,
                     const std::vector<unsigned> &Threads) {
  std::printf("%s\n%s\n\n", Title, Caption);
  std::vector<SpeedupSeries> Series =
      speedupSweep(M, Policy, BaselinePolicy, Threads);
  printSpeedupTable(stdout, "Speedup vs threads:", Series);
  std::printf("\nAbsolute modeled seconds:\n");
  std::printf("%-8s", "Threads");
  for (const SpeedupSeries &S : Series)
    std::printf(" %-22s", S.Benchmark.c_str());
  std::printf("\n");
  for (std::size_t I = 0; I < Threads.size(); ++I) {
    std::printf("%-8u", Threads[I]);
    for (const SpeedupSeries &S : Series)
      std::printf(" %-22.4f", S.Seconds[I]);
    std::printf("\n");
  }

  benchutil::JsonReport Json(Name, JsonPath);
  if (Json.enabled()) {
    std::string Config = std::string(allocPolicyName(Policy)) + "-vs-" +
                         allocPolicyName(BaselinePolicy);
    for (const SpeedupSeries &S : Series)
      for (std::size_t I = 0; I < S.Threads.size(); ++I)
        Json.addRow(M.Topo.name(), Config + "/" + S.Benchmark,
                    {{"threads", static_cast<double>(S.Threads[I])},
                     {"speedup", S.Speedup[I]},
                     {"seconds", S.Seconds[I]}});
  }
  return Json.write() ? 0 : 1;
}

/// argv-aware face: the unified bench driver command line. --quick
/// trims the thread sweep to its endpoints; --topology skips the binary
/// entirely when its simulated machine does not match.
inline int runFigure(int argc, char **argv, const char *Name,
                     const char *Title, const char *Caption,
                     const SimMachine &M, AllocPolicyKind Policy,
                     AllocPolicyKind BaselinePolicy,
                     const std::vector<unsigned> &Threads) {
  benchutil::BenchOptions Opts =
      benchutil::BenchOptions::parse(argc, argv, Name, Title);
  if (!Opts.runsTopology(M.Topo.name())) {
    std::printf("%s: topology %s filtered out by --topology %s\n", Name,
                M.Topo.name().c_str(), Opts.TopologyName);
    return 0;
  }
  std::vector<unsigned> Sweep = Threads;
  if (Opts.Quick && Sweep.size() > 2)
    Sweep = {Sweep.front(), Sweep.back()};
  return runFigure(Name, Opts.JsonPath, Title, Caption, M, Policy,
                   BaselinePolicy, Sweep);
}

} // namespace manti::sim

#endif // MANTI_BENCH_FIGUREMAIN_H
