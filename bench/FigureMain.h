//===- bench/FigureMain.h - shared driver for the speedup figures ---------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Each of the paper's speedup figures (4-7) is one binary that prints
/// the same series the figure plots: speedup per benchmark per thread
/// count, relative to the baseline the paper uses. This header holds the
/// shared driver.
///
//===----------------------------------------------------------------------===//

#ifndef MANTI_BENCH_FIGUREMAIN_H
#define MANTI_BENCH_FIGUREMAIN_H

#include "sim/Speedup.h"

#include <cstdio>

namespace manti::sim {

inline int runFigure(const char *Title, const char *Caption,
                     const SimMachine &M, AllocPolicyKind Policy,
                     AllocPolicyKind BaselinePolicy,
                     const std::vector<unsigned> &Threads) {
  std::printf("%s\n%s\n\n", Title, Caption);
  std::vector<SpeedupSeries> Series =
      speedupSweep(M, Policy, BaselinePolicy, Threads);
  printSpeedupTable(stdout, "Speedup vs threads:", Series);
  std::printf("\nAbsolute modeled seconds:\n");
  std::printf("%-8s", "Threads");
  for (const SpeedupSeries &S : Series)
    std::printf(" %-22s", S.Benchmark.c_str());
  std::printf("\n");
  for (std::size_t I = 0; I < Threads.size(); ++I) {
    std::printf("%-8u", Threads[I]);
    for (const SpeedupSeries &S : Series)
      std::printf(" %-22.4f", S.Seconds[I]);
    std::printf("\n");
  }
  return 0;
}

} // namespace manti::sim

#endif // MANTI_BENCH_FIGUREMAIN_H
