//===- bench/fig6_amd_interleaved.cpp - reproduce paper Figure 6 ----------===//
//
// Part of the manticore-gc project.
// "Comparative speedup plots for five benchmarks on AMD hardware with
// interleaved memory allocation." (GHC's strategy; plotted relative to
// the single-processor performance of the local-allocation runs.)
//
//===----------------------------------------------------------------------===//

#include "FigureMain.h"

using namespace manti;
using namespace manti::sim;

int main(int argc, char **argv) {
  return runFigure(
      argc, argv, "fig6_amd_interleaved",
      "Figure 6: speedups on the 48-core AMD machine, interleaved "
      "allocation",
      "(pages balanced across nodes; baseline = 1-thread LOCAL-policy run, "
      "as in the paper)",
      SimMachine::amd48(), AllocPolicyKind::Interleaved,
      AllocPolicyKind::Local, amdThreadAxis());
}
